//! The four pipeline stages of one fabric replica (paper §III, Fig. 6).
//!
//! ```text
//!  hub ──▶ ingress ══▶ batching ──▶ consensus ──▶ egress ──▶ hub
//!            ▲  (bounded queue,        │ (replies)
//!            │   shed policy)          │
//!            └────── recycle ◀─────────┘ (batches retired at
//!                                         checkpoint GC)
//! ```
//!
//! * **ingress** — reads [`WireBytes`] frames from the hub, does pooled
//!   zero-copy decode ([`IngressDecoder`]), and routes: client traffic
//!   onto the **bounded** batch queue (shedding retransmissions at the
//!   high-water mark and any client request when full — open-loop
//!   overload must not grow memory without bound), everything else to
//!   the consensus stage (never bounded, never shed). The batch pool is
//!   refilled from the recycle channel.
//! * **batching** — the primary's admission stage: dedups against the
//!   per-client [`SessionTable`] (exactly-once replies under retry
//!   storms), verifies client signatures in chunks sharded across the
//!   [`AdmissionPool`], warms request digests, and cuts PROPOSE batches
//!   on size or `batch_cut_delay` triggers. While the consensus queue
//!   is deep it *defers* pulling admissions, which backpressures
//!   through the bounded queue into ingress shedding. On a non-primary
//!   it degrades to a relay (plus cached-reply service) so the
//!   automaton's forward/progress-timer machinery sees every request.
//! * **consensus** — owns the [`PoeReplica`] automaton and its
//!   [`TimerWheel`]; every outbox action is interpreted here: sends and
//!   broadcasts encode **once** into a shared frame, client replies are
//!   handed to the egress stage, timers go on the wheel, and batches
//!   retired by checkpoint GC flow back to the ingress pool.
//! * **egress** — encodes and delivers client replies (the INFORM
//!   fan-out is `batch_size` messages per batch, so taking it off the
//!   consensus thread is a real pipeline win), recording each encoded
//!   frame in the session table's reply cache.
//!
//! Every stage thread reports its on-CPU time at exit, so a run can be
//! normalized to requests/sec/core with the load generator excluded.
//!
//! Speculative execution itself stays inside the automaton transition
//! (on the consensus thread): in PoE, execution at the proposal is part
//! of the deterministic state machine the protocol's safety argument is
//! about, so splitting it out would change the automaton, not just the
//! runtime. What the paper's execution stage *delivers* — results to
//! clients — is what the egress stage pipelines.

use crate::admission::{default_workers, AdmissionPool};
use crate::cpu::thread_cpu_ns;
use crate::ingress::{IngressDecoder, IngressStats};
use crate::queue::{bounded, BoundedReceiver, BoundedSender, DepthGauge, RecvError, TrySendError};
use crate::runtime::{encode_frame, ClusterShared, LinkAuth, TICK};
use crate::session::{Admit, SessionStats, SessionTable};
use crate::telemetry::{ReplicaTelemetry, TelemetrySources};
use crate::wheel::TimerWheel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use poe_consensus::{PoeReplica, SupportMode};
use poe_crypto::{CryptoMode, CryptoProvider, KeyMaterial};
use poe_kernel::automaton::{Action, Event, Notification, Outbox, ReplicaAutomaton};
use poe_kernel::codec::envelope_msg_offset;
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId};
use poe_kernel::messages::ProtocolMsg;
use poe_kernel::request::{Batch, Batcher, ClientRequest};
use poe_kernel::wire::WireBytes;
use poe_net::Hub;
use poe_store::SpeculativeStore;
use poe_telemetry::ProtoEvent;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How many client messages the batching stage drains per admission
/// chunk (amortizes batched signature verification and session-table
/// locking; also the scatter unit for the admission pool).
const ADMIT_CHUNK: usize = 64;

/// How long batching pauses before re-checking a deep consensus queue.
const DEFER_PAUSE: std::time::Duration = std::time::Duration::from_millis(1);

/// Runtime tuning knobs of the pipeline: backpressure bounds, session
/// reply cache, and admission parallelism. Everything protocol-visible
/// stays in [`ClusterConfig`]; these only shape how the wall-clock
/// runtime schedules the same automaton.
#[derive(Clone, Debug)]
pub struct FabricTuning {
    /// Capacity of the bounded ingress→batching queue (the backpressure
    /// point: when full, ingress sheds client requests).
    pub batch_queue_cap: usize,
    /// Client-signature verify workers per replica; `None` picks a
    /// default from the core count (0 on small hosts = inline batched
    /// verification).
    pub admission_workers: Option<usize>,
    /// Byte budget for cached encoded reply frames per replica.
    pub reply_cache_bytes: usize,
    /// How long a duplicate-in-flight request is suppressed before
    /// being passed through to the automaton anyway (liveness valve).
    pub session_grace: std::time::Duration,
    /// Consensus-queue depth above which batching defers admissions.
    pub consensus_defer_depth: u64,
}

impl Default for FabricTuning {
    fn default() -> FabricTuning {
        FabricTuning {
            batch_queue_cap: 4096,
            admission_workers: None,
            reply_cache_bytes: 1 << 20,
            session_grace: std::time::Duration::from_millis(400),
            consensus_defer_depth: 256,
        }
    }
}

/// Work items on a replica's consensus queue.
enum ConsensusJob {
    /// A decoded protocol message (from ingress, or relayed by batching).
    Deliver { from: NodeId, msg: ProtocolMsg },
    /// A batch pre-cut by the batching stage.
    LocalBatch(Arc<Batch>),
}

/// An unbounded sender with occupancy tracking: producers `inc` the
/// gauge on send, the consuming loop `dec`s on receive, so reports can
/// show where the pipeline queues (and batching can defer on depth).
struct Gauged<T> {
    tx: Sender<T>,
    gauge: Arc<DepthGauge>,
}

impl<T> Clone for Gauged<T> {
    fn clone(&self) -> Gauged<T> {
        Gauged { tx: self.tx.clone(), gauge: self.gauge.clone() }
    }
}

impl<T> Gauged<T> {
    fn send(&self, item: T) -> bool {
        // Inc *before* the send: the receiver may dequeue (and dec)
        // before a post-send inc could run, wrapping the gauge.
        self.gauge.inc();
        let ok = self.tx.send(item).is_ok();
        if !ok {
            self.gauge.dec();
        }
        ok
    }
}

/// Cheap cross-thread view of one replica's progress, published by the
/// consensus stage after every event. The harness polls these to detect
/// quiescence; the batching stage reads `primary` to know whether to
/// cut batches or relay.
pub(crate) struct ReplicaProbe {
    id: ReplicaId,
    n: usize,
    view: AtomicU64,
    exec: AtomicU64,
    commit: AtomicU64,
    events: AtomicU64,
    primary: AtomicBool,
}

/// Snapshot of a [`ReplicaProbe`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ProbeSnapshot {
    pub view: u64,
    pub exec: u64,
    pub commit: u64,
    pub events: u64,
}

impl ReplicaProbe {
    fn new(id: ReplicaId, n: usize) -> Arc<ReplicaProbe> {
        Arc::new(ReplicaProbe {
            id,
            n,
            view: AtomicU64::new(0),
            exec: AtomicU64::new(0),
            commit: AtomicU64::new(0),
            events: AtomicU64::new(0),
            primary: AtomicBool::new(poe_kernel::ids::View::ZERO.primary(n) == id),
        })
    }

    fn publish(&self, replica: &PoeReplica) {
        self.events.fetch_add(1, Ordering::Relaxed);
        let view = replica.current_view();
        self.view.store(view.0, Ordering::Relaxed);
        self.exec.store(replica.execution_frontier().0, Ordering::Relaxed);
        self.commit.store(replica.commit_frontier().0, Ordering::Relaxed);
        let primary = view.primary(self.n) == self.id && !replica.in_view_change();
        self.primary.store(primary, Ordering::Relaxed);
    }

    fn is_primary(&self) -> bool {
        self.primary.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> ProbeSnapshot {
        ProbeSnapshot {
            view: self.view.load(Ordering::Relaxed),
            exec: self.exec.load(Ordering::Relaxed),
            commit: self.commit.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
        }
    }
}

/// Counters of one replica's batching stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchingStats {
    /// Client requests that reached this stage.
    pub requests_seen: u64,
    /// Requests rejected for a missing/invalid client signature.
    pub rejected_sigs: u64,
    /// Batches cut (size or delay trigger) and handed to consensus.
    pub batches_cut: u64,
    /// Messages relayed to consensus while not primary.
    pub relayed: u64,
    /// Cached replies served directly from this stage (retry hits).
    pub cache_replies_sent: u64,
    /// Times the stage paused admissions because the consensus queue
    /// was above the defer depth (backpressure propagating to ingress).
    pub deferrals: u64,
    /// Peak depth of the bounded ingress→batching queue.
    pub queue_peak: usize,
    /// Items ever accepted by the bounded queue.
    pub queue_enqueued: u64,
    /// On-CPU ns of the admission pool's worker threads.
    pub admission_cpu_ns: u64,
    /// On-CPU ns of the batching thread itself.
    pub cpu_ns: u64,
}

/// Counters of one replica's consensus stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsensusStats {
    /// Automaton events processed (deliveries, local batches, timeouts).
    pub events: u64,
    /// Timer fires delivered (current generation only).
    pub timer_fires: u64,
    /// Unicast frames sent to replicas.
    pub sends: u64,
    /// Broadcasts (each encoded exactly once).
    pub broadcasts: u64,
    /// Batches speculatively executed.
    pub executed: u64,
    /// View-commits (`Decided` notifications).
    pub decided: u64,
    /// Stable checkpoints observed.
    pub checkpoints: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Speculative rollbacks.
    pub rollbacks: u64,
    /// `FellBehind` notifications (replica needs state transfer).
    pub fell_behind: u64,
    /// `CaughtUp` notifications (a state-transfer repair completed).
    pub caught_up: u64,
    /// Batches retired by checkpoint GC and sent back for recycling.
    pub retired: u64,
    /// Peak depth of the consensus queue.
    pub queue_peak: u64,
    /// On-CPU ns of the consensus thread.
    pub cpu_ns: u64,
}

/// Counters of one replica's egress (reply) stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct EgressStats {
    /// Client replies encoded and delivered.
    pub replies_sent: u64,
    /// Replies whose client was already gone (send failed).
    pub dropped: u64,
    /// Peak depth of the reply queue.
    pub queue_peak: u64,
    /// On-CPU ns of the egress thread.
    pub cpu_ns: u64,
}

/// Everything needed to spawn one replica's stage threads.
pub(crate) struct ReplicaSpawn<H: Hub> {
    pub shared: Arc<ClusterShared<H>>,
    pub cluster: ClusterConfig,
    pub support: SupportMode,
    pub km: Arc<KeyMaterial>,
    pub id: ReplicaId,
    pub tuning: FabricTuning,
    /// Per-peer tagging of replica→replica frames (socket substrates);
    /// [`LinkAuth::disabled`] on trusted in-process hubs.
    pub link_auth: LinkAuth,
    /// Shared metrics + flight recorder; outlives crash/restart so the
    /// protocol timeline spans the fault.
    pub telemetry: Arc<ReplicaTelemetry>,
}

/// Join handles + probe of one running replica.
pub(crate) struct ReplicaHandle {
    pub id: ReplicaId,
    pub probe: Arc<ReplicaProbe>,
    /// Per-replica kill switch: set by [`ReplicaHandle::halt`] to crash
    /// just this replica's four stage threads while the rest of the
    /// cluster keeps running (crash-recovery experiments).
    halt: Arc<AtomicBool>,
    session: Arc<Mutex<SessionTable>>,
    ingress: JoinHandle<IngressStats>,
    batching: JoinHandle<BatchingStats>,
    consensus: JoinHandle<(ConsensusStats, Box<PoeReplica>)>,
    egress: JoinHandle<EgressStats>,
}

/// What joining a replica yields: final automaton state + stage stats.
pub(crate) struct ReplicaJoin {
    pub id: ReplicaId,
    pub replica: Box<PoeReplica>,
    pub ingress: IngressStats,
    pub batching: BatchingStats,
    pub consensus: ConsensusStats,
    pub egress: EgressStats,
    pub session: SessionStats,
}

impl ReplicaHandle {
    /// Registers the replica on the hub and spawns its four stage
    /// threads. Must be called for every replica before any client
    /// starts submitting (the hub only routes to registered nodes).
    pub fn spawn<H: Hub>(spec: ReplicaSpawn<H>) -> ReplicaHandle {
        let replica = Box::new(PoeReplica::new(
            spec.cluster.clone(),
            spec.id,
            spec.support,
            spec.km.replica(spec.id.index()),
            Box::new(SpeculativeStore::new()),
        ));
        ReplicaHandle::spawn_with(spec, replica)
    }

    /// [`ReplicaHandle::spawn`] with an existing automaton — the restart
    /// path after a crash: the caller rebuilds the replica from its
    /// durable state ([`PoeReplica::into_restarted`]) and re-registering
    /// on the hub replaces the dead endpoint, so traffic flows again.
    pub fn spawn_with<H: Hub>(spec: ReplicaSpawn<H>, replica: Box<PoeReplica>) -> ReplicaHandle {
        let ReplicaSpawn { shared, cluster, support: _, km, id, tuning, link_auth, telemetry } =
            spec;
        let hub_rx = shared.hub.register(NodeId::Replica(id));
        let (cons_tx, cons_rx) = unbounded::<ConsensusJob>();
        let cons_tx = Gauged { tx: cons_tx, gauge: DepthGauge::new() };
        let (batch_tx, batch_rx) = bounded::<(NodeId, ProtocolMsg)>(tuning.batch_queue_cap);
        let (reply_tx, reply_rx) = unbounded::<(ClientId, ProtocolMsg)>();
        let reply_tx = Gauged { tx: reply_tx, gauge: DepthGauge::new() };
        let (recycle_tx, recycle_rx) = unbounded::<Arc<Batch>>();
        let probe = ReplicaProbe::new(id, cluster.n);
        let halt = Arc::new(AtomicBool::new(false));
        let session =
            Arc::new(Mutex::new(SessionTable::new(tuning.reply_cache_bytes, tuning.session_grace)));
        telemetry.attach_sources(TelemetrySources {
            probe: probe.clone(),
            batch_depth: batch_tx.gauge(),
            cons_depth: cons_tx.gauge.clone(),
            reply_depth: reply_tx.gauge.clone(),
        });

        let name = |stage: &str| format!("r{}-{stage}", id.0);

        let ingress = {
            let shared = shared.clone();
            let cons_tx = cons_tx.clone();
            let halt = halt.clone();
            let link_auth = link_auth.clone();
            let tel = telemetry.clone();
            let n = cluster.n;
            std::thread::Builder::new()
                .name(name("ingress"))
                .spawn(move || {
                    ingress_loop(
                        shared, halt, hub_rx, recycle_rx, batch_tx, cons_tx, link_auth, tel, n,
                    )
                })
                .expect("spawn ingress")
        };
        let batching = {
            let deps = BatchingDeps {
                shared: shared.clone(),
                halt: halt.clone(),
                batch_rx,
                cons_tx: cons_tx.clone(),
                probe: probe.clone(),
                crypto: (cluster.crypto_mode != CryptoMode::None).then(|| km.replica(id.index())),
                batch_size: cluster.batch_size,
                cut_delay: cluster.batch_cut_delay.to_std(),
                n: cluster.n,
                session: session.clone(),
                workers: tuning.admission_workers.unwrap_or_else(default_workers),
                defer_depth: tuning.consensus_defer_depth,
                id,
                tel: telemetry.clone(),
            };
            std::thread::Builder::new()
                .name(name("batching"))
                .spawn(move || batching_loop(deps))
                .expect("spawn batching")
        };
        let reply_gauge = reply_tx.gauge.clone();
        let consensus = {
            let shared = shared.clone();
            let probe = probe.clone();
            let halt = halt.clone();
            let gauge = cons_tx.gauge.clone();
            let link_auth = link_auth.clone();
            let tel = telemetry.clone();
            let n = cluster.n;
            std::thread::Builder::new()
                .name(name("consensus"))
                .spawn(move || {
                    consensus_loop(
                        shared, halt, cons_rx, gauge, reply_tx, recycle_tx, probe, replica,
                        link_auth, tel, n,
                    )
                })
                .expect("spawn consensus")
        };
        let egress = {
            let shared = shared.clone();
            let halt = halt.clone();
            let session = session.clone();
            let tel = telemetry.clone();
            std::thread::Builder::new()
                .name(name("egress"))
                .spawn(move || egress_loop(shared, halt, reply_rx, reply_gauge, id, session, tel))
                .expect("spawn egress")
        };
        ReplicaHandle { id, probe, halt, session, ingress, batching, consensus, egress }
    }

    /// Crashes this replica: all four stage threads observe the flag
    /// within one `TICK` and wind down, dropping every queued frame and
    /// all volatile state — only what the consensus thread returns (the
    /// automaton with its store + ledger) survives, mirroring a process
    /// crash where durable state is what's on disk. Follow with
    /// [`ReplicaHandle::join`].
    pub fn halt(&self) {
        self.halt.store(true, Ordering::Relaxed);
    }

    /// Joins all four stage threads (requires the stop flag to be set or
    /// the pipeline's channels to have drained; every loop is bounded by
    /// `recv_timeout`, so this cannot deadlock).
    pub fn join(self) -> ReplicaJoin {
        let id = self.id;
        let ingress = self.ingress.join().unwrap_or_else(|_| panic!("{id} ingress panicked"));
        let batching = self.batching.join().unwrap_or_else(|_| panic!("{id} batching panicked"));
        let (consensus, replica) =
            self.consensus.join().unwrap_or_else(|_| panic!("{id} consensus panicked"));
        let egress = self.egress.join().unwrap_or_else(|_| panic!("{id} egress panicked"));
        let session = self.session.lock().expect("session table poisoned").stats();
        ReplicaJoin { id, replica, ingress, batching, consensus, egress, session }
    }
}

// ------------------------------------------------------------- ingress

/// A stage winds down when the whole cluster stops or this one replica
/// is crashed via its halt flag.
fn winding_down<H: Hub>(shared: &ClusterShared<H>, halt: &AtomicBool) -> bool {
    shared.stopped() || halt.load(Ordering::Relaxed)
}

/// Link-auth admission check on one decoded frame. Replica-origin
/// envelopes must carry a tag valid over the message region; client-
/// origin envelopes may only be request traffic (whose authenticity
/// rides on per-request signatures checked at admission) — anything
/// else claiming a client sender is a spoofed consensus message.
fn frame_authentic(
    link_auth: &LinkAuth,
    frame: &WireBytes,
    env: &poe_kernel::messages::Envelope,
    n: usize,
) -> bool {
    if !link_auth.enabled() {
        return true;
    }
    match env.from {
        NodeId::Replica(_) => match envelope_msg_offset(frame.as_slice()) {
            Some(off) => {
                link_auth.verify(env.from.global_index(n), &frame.as_slice()[off..], &env.auth)
            }
            None => false,
        },
        NodeId::Client(_) => {
            matches!(env.msg, ProtocolMsg::Request(_) | ProtocolMsg::RequestBroadcast(_))
        }
    }
}

/// How long a shed-free stretch closes a coalesced shed episode: one
/// recorder event summarizes a burst instead of one event per dropped
/// frame (overload would otherwise evict the interesting history).
const SHED_EPISODE_GAP: std::time::Duration = std::time::Duration::from_millis(100);

#[allow(clippy::too_many_arguments)]
fn ingress_loop<H: Hub>(
    shared: Arc<ClusterShared<H>>,
    halt: Arc<AtomicBool>,
    hub_rx: Receiver<WireBytes>,
    recycle_rx: Receiver<Arc<Batch>>,
    batch_tx: BoundedSender<(NodeId, ProtocolMsg)>,
    cons_tx: Gauged<ConsensusJob>,
    link_auth: LinkAuth,
    tel: Arc<ReplicaTelemetry>,
    n: usize,
) -> IngressStats {
    let mut decoder = IngressDecoder::new();
    let mut to_batching = 0u64;
    let mut to_consensus = 0u64;
    let mut shed_retransmits = 0u64;
    let mut shed_full = 0u64;
    let mut auth_failures = 0u64;
    let high_water = batch_tx.capacity() / 2;
    let batch_depth = batch_tx.gauge();
    // Coalesced shed episode: counts at episode start + last shed time.
    let mut shed_mark: (u64, u64) = (0, 0);
    let mut last_shed: Option<Instant> = None;
    loop {
        // Refill the pool with containers GC retired, so subsequent
        // batch decodes reuse instead of allocating.
        for batch in recycle_rx.try_iter() {
            decoder.recycle(batch);
        }
        match hub_rx.recv_timeout(TICK) {
            Ok(frame) => {
                tel.frames.inc();
                let env = match decoder.decode(&frame) {
                    Some(env) if frame_authentic(&link_auth, &frame, &env, n) => Some(env),
                    Some(_) => {
                        auth_failures += 1;
                        None
                    }
                    None => None,
                };
                if let Some(env) = env {
                    match env.msg {
                        msg @ (ProtocolMsg::Request(_)
                        | ProtocolMsg::RequestBroadcast(_)
                        | ProtocolMsg::Forward(_)) => {
                            // Shed policy, cheapest loss first: above
                            // the high-water mark drop retransmissions
                            // (the client retries anyway); at capacity
                            // drop any client request. Consensus
                            // traffic is never shed.
                            if matches!(msg, ProtocolMsg::RequestBroadcast(_))
                                && batch_tx.len() >= high_water
                            {
                                shed_retransmits += 1;
                                tel.shed_retransmits.inc();
                                last_shed = Some(Instant::now());
                            } else {
                                match batch_tx.try_send((env.from, msg)) {
                                    Ok(()) => {
                                        to_batching += 1;
                                        tel.batch_depth_hist.record(batch_depth.depth());
                                    }
                                    Err(TrySendError::Full(_)) => {
                                        shed_full += 1;
                                        tel.shed_full.inc();
                                        last_shed = Some(Instant::now());
                                    }
                                    Err(TrySendError::Disconnected(_)) => {}
                                }
                            }
                        }
                        msg => {
                            to_consensus += 1;
                            cons_tx.send(ConsensusJob::Deliver { from: env.from, msg });
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Close a coalesced shed episode once the burst has been quiet
        // for a beat: one timeline event summarizes the whole burst.
        if last_shed.is_some_and(|t| t.elapsed() >= SHED_EPISODE_GAP) {
            record_shed_episode(&tel, &shared, &mut shed_mark, shed_retransmits, shed_full);
            last_shed = None;
        }
        if winding_down(&shared, &halt) {
            break;
        }
    }
    if last_shed.is_some() {
        record_shed_episode(&tel, &shared, &mut shed_mark, shed_retransmits, shed_full);
    }
    let mut stats = decoder.stats();
    stats.to_batching = to_batching;
    stats.to_consensus = to_consensus;
    stats.shed_retransmits = shed_retransmits;
    stats.shed_full = shed_full;
    stats.auth_failures = auth_failures;
    stats.cpu_ns = thread_cpu_ns();
    stats
}

/// Flushes one coalesced shed episode into the flight recorder.
fn record_shed_episode<H: Hub>(
    tel: &ReplicaTelemetry,
    shared: &ClusterShared<H>,
    mark: &mut (u64, u64),
    retransmits: u64,
    full: u64,
) {
    let (dr, df) = (retransmits - mark.0, full - mark.1);
    if dr + df > 0 {
        tel.recorder().record(
            shared.now().0,
            ProtoEvent::Shed {
                retransmits: dr.min(u32::MAX as u64) as u32,
                full: df.min(u32::MAX as u64) as u32,
            },
        );
    }
    *mark = (retransmits, full);
}

// ------------------------------------------------------------ batching

struct BatchingDeps<H: Hub> {
    shared: Arc<ClusterShared<H>>,
    halt: Arc<AtomicBool>,
    batch_rx: BoundedReceiver<(NodeId, ProtocolMsg)>,
    cons_tx: Gauged<ConsensusJob>,
    probe: Arc<ReplicaProbe>,
    crypto: Option<CryptoProvider>,
    batch_size: usize,
    cut_delay: std::time::Duration,
    n: usize,
    session: Arc<Mutex<SessionTable>>,
    workers: usize,
    defer_depth: u64,
    id: ReplicaId,
    tel: Arc<ReplicaTelemetry>,
}

fn batching_loop<H: Hub>(deps: BatchingDeps<H>) -> BatchingStats {
    let BatchingDeps {
        shared,
        halt,
        batch_rx,
        cons_tx,
        probe,
        crypto,
        batch_size,
        cut_delay,
        n,
        session,
        workers,
        defer_depth,
        id,
        tel,
    } = deps;
    let mut stats = BatchingStats::default();
    let mut batcher = Batcher::new(batch_size);
    let mut deadline: Option<Instant> = None;
    let mut pool = crypto.map(|c| AdmissionPool::new(c, n, workers, id.0));
    let mut disconnected = false;
    let mut chunk: Vec<(NodeId, ProtocolMsg)> = Vec::with_capacity(ADMIT_CHUNK);
    let mut verify_set: Vec<ClientRequest> = Vec::with_capacity(ADMIT_CHUNK);
    let mut chunk_seen: HashSet<(u32, u64)> = HashSet::with_capacity(ADMIT_CHUNK);
    let mut defer_run: u32 = 0;
    loop {
        // Backpressure valve: while the consensus queue is deep, stop
        // pulling admissions — the bounded batch queue fills up and
        // ingress starts shedding, so overload is absorbed at the edge
        // instead of ballooning the consensus queue.
        if cons_tx.gauge.depth() > defer_depth && !disconnected && !winding_down(&shared, &halt) {
            stats.deferrals += 1;
            tel.deferrals.inc();
            defer_run += 1;
            std::thread::sleep(DEFER_PAUSE);
        } else {
            // A deferral episode just ended: one timeline event per
            // backpressure burst, not one per 1 ms pause.
            if defer_run > 0 {
                tel.recorder().record(shared.now().0, ProtoEvent::Deferred { count: defer_run });
                defer_run = 0;
            }
            let wait = match deadline {
                Some(d) => d.saturating_duration_since(Instant::now()).min(TICK),
                None => TICK,
            };
            match batch_rx.recv_timeout(wait) {
                Ok(item) => {
                    chunk.push(item);
                    while chunk.len() < ADMIT_CHUNK {
                        match batch_rx.try_recv() {
                            Some(item) => chunk.push(item),
                            None => break,
                        }
                    }
                }
                Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => disconnected = true,
            }
            if !chunk.is_empty() {
                admit_chunk(
                    &shared,
                    &probe,
                    &session,
                    &cons_tx,
                    &mut pool,
                    &mut batcher,
                    &mut deadline,
                    cut_delay,
                    &mut stats,
                    &mut chunk,
                    &mut verify_set,
                    &mut chunk_seen,
                    &tel,
                );
            }
        }
        // Cut triggers: the delay expired, primaryship moved away while
        // requests were pending, or the stage is winding down. The
        // automaton re-screens every local batch, so a stale cut is
        // safe — it degrades to the per-request path.
        let cut = batcher.pending_len() > 0
            && (disconnected
                || winding_down(&shared, &halt)
                || !probe.is_primary()
                || deadline.is_some_and(|d| Instant::now() >= d));
        if cut {
            if let Some(batch) = batcher.flush() {
                stats.batches_cut += 1;
                note_batch_cut(&tel, &shared, batch.len());
                cons_tx.send(ConsensusJob::LocalBatch(batch));
            }
            deadline = None;
        }
        if disconnected || winding_down(&shared, &halt) {
            break;
        }
    }
    if defer_run > 0 {
        tel.recorder().record(shared.now().0, ProtoEvent::Deferred { count: defer_run });
    }
    if let Some(pool) = pool {
        stats.admission_cpu_ns = pool.shutdown();
    }
    let (queue_peak, queue_enqueued) = batch_rx.occupancy();
    stats.queue_peak = queue_peak;
    stats.queue_enqueued = queue_enqueued;
    stats.cpu_ns = thread_cpu_ns();
    stats
}

/// Processes one drained chunk of client traffic: session dedup,
/// sharded signature verification, then batch insertion — the order
/// matters (dedup before the expensive verify; watermarks only after
/// the verify passed).
#[allow(clippy::too_many_arguments)]
fn admit_chunk<H: Hub>(
    shared: &Arc<ClusterShared<H>>,
    probe: &ReplicaProbe,
    session: &Mutex<SessionTable>,
    cons_tx: &Gauged<ConsensusJob>,
    pool: &mut Option<AdmissionPool>,
    batcher: &mut Batcher,
    deadline: &mut Option<Instant>,
    cut_delay: std::time::Duration,
    stats: &mut BatchingStats,
    chunk: &mut Vec<(NodeId, ProtocolMsg)>,
    verify_set: &mut Vec<ClientRequest>,
    chunk_seen: &mut HashSet<(u32, u64)>,
    tel: &ReplicaTelemetry,
) {
    stats.requests_seen += chunk.len() as u64;
    let now_ns = shared.now().0;
    let primary = probe.is_primary();
    verify_set.clear();
    chunk_seen.clear();
    for (from, msg) in chunk.drain(..) {
        if !primary {
            // Not the primary: serve exact retries straight from the
            // reply cache; relay everything else so the automaton's
            // forward path and failure-detection timers stay exact.
            if let ProtocolMsg::Request(r)
            | ProtocolMsg::RequestBroadcast(r)
            | ProtocolMsg::Forward(r) = &msg
            {
                let cached =
                    session.lock().expect("session table poisoned").replay(r.client, r.req_id);
                if let Some(frame) = cached {
                    stats.cache_replies_sent += 1;
                    shared.hub.send(NodeId::Client(r.client), frame);
                    continue;
                }
            }
            stats.relayed += 1;
            cons_tx.send(ConsensusJob::Deliver { from, msg });
            continue;
        }
        let req = match msg {
            ProtocolMsg::Request(r)
            | ProtocolMsg::RequestBroadcast(r)
            | ProtocolMsg::Forward(r) => r,
            // Ingress only routes client traffic here, but a stray
            // message is relayed rather than lost.
            other => {
                stats.relayed += 1;
                cons_tx.send(ConsensusJob::Deliver { from, msg: other });
                continue;
            }
        };
        let verdict = session
            .lock()
            .expect("session table poisoned")
            .classify(req.client, req.req_id, now_ns);
        match verdict {
            Admit::Fresh => {
                // The same request may appear twice in one chunk (a
                // Request racing its own broadcast) — verify it once.
                if chunk_seen.insert((req.client.0, req.req_id)) {
                    verify_set.push(req);
                }
            }
            Admit::ReplyCached(frame) => {
                stats.cache_replies_sent += 1;
                shared.hub.send(NodeId::Client(req.client), frame);
            }
            // Counted inside the session table.
            Admit::DuplicateInFlight | Admit::Stale => {}
        }
    }
    if verify_set.is_empty() {
        return;
    }
    let verdicts = match pool.as_mut() {
        Some(pool) => pool.verify(verify_set),
        None => vec![true; verify_set.len()],
    };
    let mut table = session.lock().expect("session table poisoned");
    for (req, ok) in verify_set.drain(..).zip(verdicts) {
        if !ok {
            stats.rejected_sigs += 1;
            continue;
        }
        table.note_enqueued(req.client, req.req_id, now_ns);
        // Warm the digest cache here, off the consensus thread (the
        // clone inside the batch shares it).
        let _ = req.digest();
        if let Some(batch) = batcher.push(req) {
            stats.batches_cut += 1;
            note_batch_cut(tel, shared, batch.len());
            cons_tx.send(ConsensusJob::LocalBatch(batch));
            *deadline = None;
        } else if deadline.is_none() {
            *deadline = Some(Instant::now() + cut_delay);
        }
    }
}

/// Counts a cut batch and drops it on the timeline.
fn note_batch_cut<H: Hub>(tel: &ReplicaTelemetry, shared: &ClusterShared<H>, len: usize) {
    tel.batches_cut.inc();
    tel.batch_len.record(len as u64);
    tel.recorder().record(shared.now().0, ProtoEvent::BatchCut { len: len as u32 });
}

// ----------------------------------------------------------- consensus

struct ConsensusCtx<H: Hub> {
    shared: Arc<ClusterShared<H>>,
    reply_tx: Gauged<(ClientId, ProtocolMsg)>,
    recycle_tx: Sender<Arc<Batch>>,
    probe: Arc<ReplicaProbe>,
    replica: Box<PoeReplica>,
    wheel: TimerWheel,
    scratch: poe_kernel::codec::ScratchPool,
    out: Outbox,
    stats: ConsensusStats,
    my_node: NodeId,
    link_auth: LinkAuth,
    tel: Arc<ReplicaTelemetry>,
    n: usize,
}

impl<H: Hub> ConsensusCtx<H> {
    fn step_event(&mut self, event: Event) {
        let now = self.shared.now();
        let mut out = std::mem::take(&mut self.out);
        self.replica.on_event(now, event, &mut out);
        self.finish(out);
    }

    fn step_local_batch(&mut self, batch: Arc<Batch>) {
        let mut out = std::mem::take(&mut self.out);
        self.replica.on_local_batch(batch, &mut out);
        self.finish(out);
    }

    fn finish(&mut self, mut out: Outbox) {
        let now = self.shared.now();
        self.stats.events += 1;
        for action in out.drain_iter() {
            self.apply(now, action);
        }
        self.out = out;
        // Containers freed by checkpoint GC go back to the ingress pool
        // — this is where decoded batches actually die.
        for batch in self.replica.take_retired_batches() {
            self.stats.retired += 1;
            let _ = self.recycle_tx.send(batch);
        }
        self.probe.publish(&self.replica);
    }

    fn apply(&mut self, now: poe_kernel::time::Time, action: Action) {
        match action {
            Action::Send { to: NodeId::Client(c), msg } => {
                // Replies are encoded and delivered by the egress stage.
                self.reply_tx.send((c, msg));
            }
            Action::Send { to, msg } => {
                self.stats.sends += 1;
                let frame = if self.link_auth.enabled() {
                    match to {
                        NodeId::Replica(r) => {
                            self.link_auth.encode_to(&mut self.scratch, self.my_node, r.0, &msg)
                        }
                        NodeId::Client(_) => encode_frame(&mut self.scratch, self.my_node, msg),
                    }
                } else {
                    encode_frame(&mut self.scratch, self.my_node, msg)
                };
                self.shared.hub.send(to, frame);
            }
            Action::Broadcast { msg } => {
                self.stats.broadcasts += 1;
                if self.link_auth.enabled() && !self.link_auth.shared_tag() {
                    // Pairwise MACs: every peer needs its own tag, so
                    // the encode-once shared frame is gone — the message
                    // body is still encoded once, but each recipient
                    // gets its own envelope assembly + copy. This is the
                    // paper's MAC-cluster trade-off, measured for real
                    // by the inproc-vs-TCP A/B.
                    let me = match self.my_node {
                        NodeId::Replica(r) => r.0,
                        NodeId::Client(_) => unreachable!("replica stage"),
                    };
                    for peer in 0..self.n as u32 {
                        if peer == me {
                            continue;
                        }
                        let frame =
                            self.link_auth.encode_to(&mut self.scratch, self.my_node, peer, &msg);
                        self.shared.hub.send(NodeId::Replica(ReplicaId(peer)), frame);
                    }
                } else if self.link_auth.enabled() {
                    // Signature tags convince every verifier: one encode,
                    // frame sharing preserved.
                    let frame = self.link_auth.encode_shared(&mut self.scratch, self.my_node, &msg);
                    self.shared.hub.broadcast(self.my_node, &frame);
                } else {
                    // Encode once; the hub clones the *view* per recipient.
                    let frame = encode_frame(&mut self.scratch, self.my_node, msg);
                    self.shared.hub.broadcast(self.my_node, &frame);
                }
            }
            Action::SetTimer { kind, delay } => self.wheel.arm(kind, now + delay),
            Action::CancelTimer { kind } => self.wheel.cancel(&kind),
            Action::Notify(n) => self.note(n),
        }
    }

    fn note(&mut self, n: Notification) {
        let t_ns = self.shared.now().0;
        let rec = self.tel.recorder();
        match n {
            Notification::Executed { view, seq, .. } => {
                self.stats.executed += 1;
                self.tel.executed.inc();
                rec.record(t_ns, ProtoEvent::Executed { view: view.0, seq: seq.0 });
            }
            Notification::Decided { seq } => {
                self.stats.decided += 1;
                self.tel.decided.inc();
                rec.record(t_ns, ProtoEvent::Decided { seq: seq.0 });
            }
            Notification::CheckpointStable { seq } => {
                self.stats.checkpoints += 1;
                self.tel.checkpoints.inc();
                rec.record(t_ns, ProtoEvent::CheckpointStable { seq: seq.0 });
            }
            Notification::ViewChanged { view } => {
                self.stats.view_changes += 1;
                self.tel.view_changes.inc();
                rec.record(t_ns, ProtoEvent::ViewChanged { view: view.0 });
            }
            Notification::RolledBack { to } => {
                self.stats.rollbacks += 1;
                self.tel.rollbacks.inc();
                rec.record(t_ns, ProtoEvent::RolledBack { to: to.map_or(0, |s| s.0) });
            }
            Notification::FellBehind { stable, exec_frontier, .. } => {
                self.stats.fell_behind += 1;
                self.tel.fell_behind.inc();
                rec.record(
                    t_ns,
                    ProtoEvent::FellBehind { stable: stable.0, exec: exec_frontier.0 },
                );
            }
            Notification::CaughtUp { stable, exec_frontier } => {
                self.stats.caught_up += 1;
                self.tel.caught_up.inc();
                rec.record(t_ns, ProtoEvent::CaughtUp { stable: stable.0, exec: exec_frontier.0 });
            }
            Notification::RequestComplete { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn consensus_loop<H: Hub>(
    shared: Arc<ClusterShared<H>>,
    halt: Arc<AtomicBool>,
    cons_rx: Receiver<ConsensusJob>,
    gauge: Arc<DepthGauge>,
    reply_tx: Gauged<(ClientId, ProtocolMsg)>,
    recycle_tx: Sender<Arc<Batch>>,
    probe: Arc<ReplicaProbe>,
    replica: Box<PoeReplica>,
    link_auth: LinkAuth,
    tel: Arc<ReplicaTelemetry>,
    n: usize,
) -> (ConsensusStats, Box<PoeReplica>) {
    let my_node = NodeId::Replica(replica.id());
    let cons_depth_hist = tel.cons_depth_hist.clone();
    let mut ctx = ConsensusCtx {
        shared,
        reply_tx,
        recycle_tx,
        probe,
        replica,
        wheel: TimerWheel::new(),
        scratch: poe_kernel::codec::ScratchPool::new(),
        out: Outbox::new(),
        stats: ConsensusStats::default(),
        my_node,
        link_auth,
        tel,
        n,
    };
    ctx.step_event(Event::Init);
    loop {
        // Fire due timers first (the wheel filters stale generations).
        let now = ctx.shared.now();
        while let Some(kind) = ctx.wheel.pop_expired(now) {
            ctx.stats.timer_fires += 1;
            ctx.step_event(Event::Timeout(kind));
        }
        let wait = ctx.wheel.wait_budget(ctx.shared.now(), TICK);
        match cons_rx.recv_timeout(wait) {
            Ok(job) => {
                gauge.dec();
                cons_depth_hist.record(gauge.depth());
                handle(&mut ctx, job);
                // Opportunistic burst drain amortizes wakeups under load.
                for _ in 0..128 {
                    match cons_rx.try_recv() {
                        Ok(job) => {
                            gauge.dec();
                            handle(&mut ctx, job);
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Both senders (ingress, batching) exited: the queue is
            // drained and the pipeline upstream is gone — wind down.
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // A halted replica drops its queue on the floor — a crash, not
        // a graceful drain (the cluster-wide stop still drains via the
        // disconnect cascade above).
        if halt.load(Ordering::Relaxed) {
            break;
        }
    }
    ctx.probe.publish(&ctx.replica);
    ctx.stats.queue_peak = gauge.peak();
    ctx.stats.cpu_ns = thread_cpu_ns();
    (ctx.stats, ctx.replica)
}

fn handle<H: Hub>(ctx: &mut ConsensusCtx<H>, job: ConsensusJob) {
    match job {
        ConsensusJob::Deliver { from, msg } => ctx.step_event(Event::Deliver { from, msg }),
        ConsensusJob::LocalBatch(batch) => ctx.step_local_batch(batch),
    }
}

// -------------------------------------------------------------- egress

fn egress_loop<H: Hub>(
    shared: Arc<ClusterShared<H>>,
    halt: Arc<AtomicBool>,
    reply_rx: Receiver<(ClientId, ProtocolMsg)>,
    gauge: Arc<DepthGauge>,
    id: ReplicaId,
    session: Arc<Mutex<SessionTable>>,
    tel: Arc<ReplicaTelemetry>,
) -> EgressStats {
    let mut stats = EgressStats::default();
    let mut scratch = poe_kernel::codec::ScratchPool::new();
    let my_node = NodeId::Replica(id);
    loop {
        match reply_rx.recv_timeout(TICK) {
            Ok((client, msg)) => {
                gauge.dec();
                let req_id = match &msg {
                    ProtocolMsg::Reply(r) => Some(r.req_id),
                    _ => None,
                };
                let frame = encode_frame(&mut scratch, my_node, msg);
                // Record before sending: even if this client's endpoint
                // is gone, a retry must hit the cache, not re-execute.
                if let Some(req_id) = req_id {
                    session
                        .lock()
                        .expect("session table poisoned")
                        .record_reply(client, req_id, &frame);
                }
                if shared.hub.send(NodeId::Client(client), frame) {
                    stats.replies_sent += 1;
                    tel.replies_sent.inc();
                } else {
                    stats.dropped += 1;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if winding_down(&shared, &halt) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    stats.queue_peak = gauge.peak();
    stats.cpu_ns = thread_cpu_ns();
    stats
}
