//! [`FabricCluster`]: n replicas × four pipeline stages + YCSB client
//! threads, wired over any [`Hub`] substrate (in-process channels or
//! supervised TCP links, selected by a [`Transport`]), with a
//! deterministic three-phase shutdown (clients drain → replicas
//! quiesce → stop/join).

use crate::client::{client_loop, ClientStats};
use crate::runtime::{ClusterCtl, ClusterShared, LinkAuth};
use crate::session::SessionStats;
use crate::stage::{
    BatchingStats, ConsensusStats, EgressStats, FabricTuning, ProbeSnapshot, ReplicaHandle,
    ReplicaJoin, ReplicaSpawn,
};
use crate::telemetry::ReplicaTelemetry;
use crate::transport::{link_key_material, InprocTransport, Transport};
use crate::IngressStats;
use poe_consensus::{RepairStats, SupportMode};
use poe_crypto::{CertScheme, CryptoMode, Digest, KeyMaterial};
use poe_kernel::automaton::ReplicaAutomaton;
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use poe_net::{Hub, InprocHub, LinkReport};
use poe_telemetry::{Histogram, TimeBase};
use poe_workload::{ClientConfig, WorkloadClient, YcsbConfig, YcsbWorkload};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a wall-clock fabric cluster.
///
/// Defaults mirror [`poe_sim`'s cluster defaults] for comparability
/// (unauthenticated links, dealer-keyed simulated certificates, batch
/// size 20) — except the checkpoint interval, which is shortened to 8 so
/// realistic runs exercise checkpoint stability, undo-log GC, and the
/// batch-container recycle loop on the wall clock.
///
/// [`poe_sim`'s cluster defaults]: https://docs.rs/poe-sim
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Shared cluster parameters (n, f, batch size, timeouts, crypto).
    pub cluster: ClusterConfig,
    /// SUPPORT mode: threshold shares (Fig. 3) or MAC votes (App. A).
    pub support: SupportMode,
    /// Number of client threads.
    pub n_clients: usize,
    /// Requests each client submits before stopping.
    pub requests_per_client: u64,
    /// Per-client in-flight window (closed loop when 1).
    pub client_outstanding: usize,
    /// Workload shape (defaults to the laptop-scale YCSB table).
    pub ycsb: YcsbConfig,
    /// Pipeline runtime knobs (queue bounds, reply cache, admission
    /// parallelism) — protocol-invisible.
    pub tuning: FabricTuning,
    /// Link authentication of replica→replica frames: `Some(mode)`
    /// tags every consensus frame with a per-peer MAC (or signature)
    /// in that mode and verifies it at ingress — the paper's
    /// MAC-cluster trade-off. `None` (default) keeps the trusted-
    /// channel model. Independent of `cluster.crypto_mode`, which
    /// governs client request signatures.
    pub link_auth: Option<CryptoMode>,
}

impl FabricConfig {
    /// An `n`-replica wall-clock cluster with four YCSB clients
    /// submitting 250 requests each (≥ 1000 total).
    pub fn new(n: usize, support: SupportMode) -> FabricConfig {
        let cluster = ClusterConfig::new(n)
            .with_crypto_mode(CryptoMode::None)
            .with_cert_scheme(CertScheme::Simulated)
            .with_batch_size(20)
            .with_checkpoint_interval(8);
        FabricConfig {
            cluster,
            support,
            n_clients: 4,
            requests_per_client: 250,
            client_outstanding: 4,
            ycsb: YcsbConfig::small(),
            tuning: FabricTuning::default(),
            link_auth: None,
        }
    }

    /// Enables per-peer link authentication of replica frames.
    pub fn with_link_auth(mut self, mode: CryptoMode) -> FabricConfig {
        self.link_auth = (mode != CryptoMode::None).then_some(mode);
        self
    }

    /// Total requests the clients will submit.
    pub fn total_requests(&self) -> u64 {
        self.n_clients as u64 * self.requests_per_client
    }
}

/// Why a fabric run did not complete.
#[derive(Debug)]
pub enum FabricError {
    /// Clients did not finish their workload before the deadline.
    ClientsStalled {
        /// Requests completed when the run was aborted.
        completed: u64,
        /// The configured target.
        target: u64,
        /// Probe dump for debugging.
        detail: String,
    },
    /// Clients finished but the replicas kept processing (or diverged in
    /// frontier) past the deadline.
    QuiesceTimeout {
        /// Probe dump for debugging.
        detail: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::ClientsStalled { completed, target, detail } => {
                write!(f, "clients stalled at {completed}/{target} requests; {detail}")
            }
            FabricError::QuiesceTimeout { detail } => {
                write!(f, "replicas did not quiesce: {detail}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Final state and counters of one replica after shutdown.
#[derive(Clone, Debug)]
pub struct ReplicaReport {
    /// The replica.
    pub id: ReplicaId,
    /// Final view.
    pub view: View,
    /// Contiguous execution frontier.
    pub exec_frontier: SeqNum,
    /// Committed blocks on the ledger.
    pub ledger_len: usize,
    /// Proof-independent committed-history digest (the cross-replica
    /// convergence criterion; see `Ledger::history_digest`).
    pub history_digest: Digest,
    /// Application state digest.
    pub state_digest: Digest,
    /// Ingress-stage counters.
    pub ingress: IngressStats,
    /// Batching-stage counters.
    pub batching: BatchingStats,
    /// Consensus-stage counters.
    pub consensus: ConsensusStats,
    /// Egress-stage counters.
    pub egress: EgressStats,
    /// Session-table counters (dedup, reply cache, eviction).
    pub session: SessionStats,
    /// State-transfer counters (repairs run/served, budget throttling).
    pub repair: RepairStats,
    /// Per-link supervision counters of this replica's hub (connects,
    /// reconnects, frames/bytes, queue peaks, sheds). Empty on
    /// link-less substrates like the in-process hub.
    pub links: Vec<LinkReport>,
}

impl ReplicaReport {
    /// Total on-CPU nanoseconds of this replica's stage threads plus its
    /// admission workers (zero when the platform lacks CPU accounting).
    pub fn cpu_ns(&self) -> u64 {
        self.ingress.cpu_ns
            + self.batching.cpu_ns
            + self.batching.admission_cpu_ns
            + self.consensus.cpu_ns
            + self.egress.cpu_ns
    }
}

/// Latency summary over all completed requests (microseconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
}

impl LatencySummary {
    /// Summarizes a nanosecond latency histogram in microseconds.
    ///
    /// This replaced the original sort-all-samples quantile pick: the
    /// log-linear histogram holds quantile error under 1 % from a fixed
    /// ~58 KiB table, so hour-long open-loop windows no longer grow a
    /// raw sample vector without bound.
    pub(crate) fn from_hist(hist: &Histogram) -> LatencySummary {
        if hist.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: hist.count(),
            p50_us: hist.quantile(0.5) / 1_000,
            p99_us: hist.quantile(0.99) / 1_000,
            max_us: hist.max() / 1_000,
            mean_us: (hist.mean() / 1_000.0) as u64,
        }
    }
}

/// What a completed (and fully joined) fabric run reports.
#[derive(Clone, Debug)]
pub struct FabricReport {
    /// Wall-clock duration from launch to the last thread join.
    pub wall: Duration,
    /// Requests completed across all clients.
    pub completed_requests: u64,
    /// End-to-end request latency summary.
    pub latency: LatencySummary,
    /// Per-replica final state and stage counters.
    pub replicas: Vec<ReplicaReport>,
    /// Threads joined during shutdown (stages + clients).
    pub threads_joined: usize,
}

impl FabricReport {
    /// True when every replica agrees on committed history and state.
    pub fn converged(&self) -> bool {
        let Some(first) = self.replicas.first() else { return true };
        self.replicas.iter().all(|r| {
            r.history_digest == first.history_digest && r.state_digest == first.state_digest
        })
    }

    /// The common history digest (when converged).
    pub fn history_digest(&self) -> Option<Digest> {
        self.converged().then(|| self.replicas[0].history_digest)
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        self.completed_requests as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Summed on-CPU seconds of every replica stage thread (+ admission
    /// workers). Driver/client threads are excluded by construction —
    /// only replica-side threads report `cpu_ns`.
    pub fn replica_cpu_secs(&self) -> f64 {
        self.replicas.iter().map(ReplicaReport::cpu_ns).sum::<u64>() as f64 / 1e9
    }

    /// Completed requests per second per replica CPU core — completed
    /// requests divided by the CPU-seconds the replicas burned. `None`
    /// when the platform reported no CPU accounting.
    pub fn requests_per_sec_per_core(&self) -> Option<f64> {
        let cpu = self.replica_cpu_secs();
        (cpu > 0.0).then(|| self.completed_requests as f64 / cpu)
    }
}

/// A running wall-clock PoE cluster: all threads are live from
/// [`FabricCluster::launch`] on; clients start submitting immediately.
///
/// Generic over the [`Hub`] substrate: `FabricCluster<InprocHub>` (the
/// default) wires every node through one in-process hub;
/// `FabricCluster<TcpHub>` (via [`crate::TcpTransport`]) gives every
/// node its own socket hub meshed over real TCP links.
pub struct FabricCluster<H: Hub = InprocHub> {
    cfg: FabricConfig,
    ctl: Arc<ClusterCtl>,
    /// One shared runtime context per replica (its hub + the cluster
    /// ctl). On the in-proc substrate the hubs are clones of one hub.
    replica_shared: Vec<Arc<ClusterShared<H>>>,
    /// Client-side hubs handed out by the transport, kept for shutdown.
    client_hubs: Vec<H>,
    started: Instant,
    km: Arc<KeyMaterial>,
    link_km: Option<Arc<KeyMaterial>>,
    /// `None` while a replica is crashed (its durable state is parked in
    /// `downed` until [`FabricCluster::restart_replica`]).
    replicas: Vec<Option<ReplicaHandle>>,
    downed: BTreeMap<usize, ReplicaJoin>,
    clients: Vec<JoinHandle<ClientStats>>,
    /// Per-replica metrics + flight recorder. Outlives crash/restart:
    /// the restarted stages write into the same recorder, so one
    /// timeline spans the fault.
    telemetries: Vec<Arc<ReplicaTelemetry>>,
}

impl FabricCluster<InprocHub> {
    /// Builds key material, registers every node on a fresh in-process
    /// hub, and spawns all replica stage threads and client threads.
    pub fn launch(cfg: &FabricConfig) -> FabricCluster {
        FabricCluster::launch_with(cfg, &mut InprocTransport::new())
    }

    /// Replicas only, on the in-process substrate.
    #[cfg(test)]
    pub(crate) fn launch_headless(cfg: &FabricConfig) -> FabricCluster {
        FabricCluster::launch_headless_with(cfg, &mut InprocTransport::new())
    }

    /// The shared runtime context (on the in-proc substrate every node
    /// shares one hub, so replica 0's handle serves a test harness as
    /// "the" cluster hub).
    #[cfg(test)]
    pub(crate) fn shared(&self) -> Arc<ClusterShared<InprocHub>> {
        self.replica_shared[0].clone()
    }
}

impl<H: Hub> FabricCluster<H> {
    /// [`FabricCluster::launch`] over an explicit transport (e.g.
    /// [`crate::TcpTransport::loopback`] for a socket-substrate cluster
    /// in one process).
    pub fn launch_with<T: Transport<Hub = H>>(
        cfg: &FabricConfig,
        transport: &mut T,
    ) -> FabricCluster<H> {
        let mut cluster = FabricCluster::launch_headless_with(cfg, transport);
        let km = cluster.km.clone();
        let ctl = cluster.ctl.clone();
        let ccluster = &cfg.cluster;
        for c in 0..cfg.n_clients {
            let id = ClientId(c as u32);
            let hub = transport.client_hub(c as u32, 1);
            let rx = hub.register(NodeId::Client(id));
            cluster.client_hubs.push(hub.clone());
            let shared = ClusterShared::with_ctl(hub, ctl.clone());
            let mut ccfg = ClientConfig::matching(id, ccluster.n, ccluster.f, ccluster.nf())
                .with_outstanding(cfg.client_outstanding)
                .with_max_requests(cfg.requests_per_client)
                .with_retry(ccluster.client_timeout);
            ccfg.sign = ccluster.crypto_mode != CryptoMode::None;
            let source = YcsbWorkload::new(YcsbConfig {
                seed: ccluster.seed ^ (0xC0FFEE + c as u64),
                ..cfg.ycsb.clone()
            });
            let client = WorkloadClient::new(ccfg, km.client(c), Box::new(source));
            let handle = std::thread::Builder::new()
                .name(format!("client-{c}"))
                .spawn(move || client_loop(shared, rx, client))
                .expect("spawn client");
            cluster.clients.push(handle);
        }
        cluster
    }

    /// Replicas only — no client threads. The open-loop engine registers
    /// its own driver endpoints (client groups) on transport-provided
    /// hubs and submits directly; with zero client handles,
    /// `run_to_completion`'s client phase is trivially satisfied and the
    /// quiesce/join machinery is reused as-is.
    pub(crate) fn launch_headless_with<T: Transport<Hub = H>>(
        cfg: &FabricConfig,
        transport: &mut T,
    ) -> FabricCluster<H> {
        let cluster = &cfg.cluster;
        let km = KeyMaterial::generate(
            cluster.n,
            cfg.n_clients,
            cluster.nf(),
            cluster.crypto_mode,
            cluster.cert_scheme,
            cluster.seed,
        );
        let link_km = cfg.link_auth.map(|mode| link_key_material(cluster, mode));
        let ctl = ClusterCtl::new();
        let started = Instant::now();
        // Replicas first: every replica endpoint must exist before the
        // first client request can be broadcast.
        let replica_shared: Vec<Arc<ClusterShared<H>>> = (0..cluster.n)
            .map(|i| {
                ClusterShared::with_ctl(transport.replica_hub(ReplicaId(i as u32)), ctl.clone())
            })
            .collect();
        let telemetries: Vec<Arc<ReplicaTelemetry>> =
            (0..cluster.n).map(|i| ReplicaTelemetry::new(i as u32, TimeBase::Wall)).collect();
        let replicas: Vec<Option<ReplicaHandle>> = (0..cluster.n)
            .map(|i| {
                Some(ReplicaHandle::spawn(ReplicaSpawn {
                    shared: replica_shared[i].clone(),
                    cluster: cluster.clone(),
                    support: cfg.support,
                    km: km.clone(),
                    id: ReplicaId(i as u32),
                    tuning: cfg.tuning.clone(),
                    link_auth: link_auth_for(&link_km, i),
                    telemetry: telemetries[i].clone(),
                }))
            })
            .collect();
        FabricCluster {
            cfg: cfg.clone(),
            ctl,
            replica_shared,
            client_hubs: Vec::new(),
            started,
            km,
            link_km,
            replicas,
            downed: BTreeMap::new(),
            clients: Vec::new(),
            telemetries,
        }
    }

    /// Replica `i`'s metrics + flight recorder.
    pub fn telemetry(&self, i: usize) -> &Arc<ReplicaTelemetry> {
        &self.telemetries[i]
    }

    /// All replicas' telemetry, cluster order.
    pub fn telemetries(&self) -> &[Arc<ReplicaTelemetry>] {
        &self.telemetries
    }

    /// The cluster control block (clock + stop flag) — for driver
    /// threads that bring their own hubs.
    pub(crate) fn ctl(&self) -> Arc<ClusterCtl> {
        self.ctl.clone()
    }

    /// Registers a driver-owned client hub for teardown at shutdown.
    pub(crate) fn adopt_client_hub(&mut self, hub: H) {
        self.client_hubs.push(hub);
    }

    /// The cluster's key material (driver threads sign client requests
    /// with it when the cluster runs a signed crypto mode).
    pub(crate) fn key_material(&self) -> Arc<KeyMaterial> {
        self.km.clone()
    }

    /// Crashes replica `i` mid-run: its four stage threads halt and are
    /// joined, every queued frame and all volatile consensus state is
    /// lost; only the automaton (application store + ledger — the
    /// durable state) is parked for a later
    /// [`FabricCluster::restart_replica`]. The rest of the cluster keeps
    /// running; with `n ≥ 3f+1` and one crash, quorums still form.
    pub fn crash_replica(&mut self, i: usize) {
        let handle = self.replicas[i].take().expect("replica is running");
        handle.halt();
        self.telemetries[i].recorder().record(self.ctl.now().0, poe_telemetry::ProtoEvent::Crashed);
        self.downed.insert(i, handle.join());
    }

    /// Restarts a crashed replica from its durable state: the automaton
    /// is rebuilt via `PoeReplica::into_restarted` (speculative suffix
    /// rolled back, volatile state reset) and re-registered on the hub,
    /// which revives the dead endpoint. The replica rejoins live traffic
    /// immediately and relies on the state-transfer protocol to close
    /// whatever gap opened while it was down. Stage counters restart
    /// from zero — the final report covers the new incarnation.
    pub fn restart_replica(&mut self, i: usize) {
        let join = self.downed.remove(&i).expect("replica is down");
        let replica = Box::new((*join.replica).into_restarted());
        self.telemetries[i]
            .recorder()
            .record(self.ctl.now().0, poe_telemetry::ProtoEvent::Restarted);
        self.replicas[i] = Some(ReplicaHandle::spawn_with(
            ReplicaSpawn {
                shared: self.replica_shared[i].clone(),
                cluster: self.cfg.cluster.clone(),
                support: self.cfg.support,
                km: self.km.clone(),
                id: ReplicaId(i as u32),
                tuning: self.cfg.tuning.clone(),
                link_auth: link_auth_for(&self.link_km, i),
                telemetry: self.telemetries[i].clone(),
            },
            replica,
        ));
    }

    /// Phase 1 + 2 + 3: wait for the clients to finish their workload,
    /// wait for the replicas to quiesce (frontiers equal, no events for
    /// two consecutive polls), then stop and join everything. `deadline`
    /// bounds the whole call — on expiry all threads are stopped and
    /// joined before the error returns, so a failed run never leaks
    /// threads.
    pub fn run_to_completion(self, deadline: Duration) -> Result<FabricReport, FabricError> {
        let t0 = Instant::now();
        let target = self.cfg.total_requests();
        // Phase 1: clients drain their workload budget.
        while !self.clients.iter().all(JoinHandle::is_finished) {
            if t0.elapsed() > deadline {
                let detail = self.probe_dump();
                let report = self.shutdown();
                return Err(FabricError::ClientsStalled {
                    completed: report.completed_requests,
                    target,
                    detail,
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Phase 2: replicas quiesce — in-flight CERTIFYs, checkpoint
        // votes, and INFORMs settle. Quiescence = all probes stop
        // advancing *and* the cheap frontiers agree, twice in a row.
        let mut last: Option<Vec<ProbeSnapshot>> = None;
        let mut stable_rounds = 0;
        loop {
            let snaps: Vec<ProbeSnapshot> =
                self.replicas.iter().flatten().map(|r| r.probe.snapshot()).collect();
            let frontiers_agree =
                snaps.iter().all(|s| s.exec == snaps[0].exec && s.commit == snaps[0].commit);
            if frontiers_agree && last.as_ref() == Some(&snaps) {
                stable_rounds += 1;
                if stable_rounds >= 2 {
                    break;
                }
            } else {
                stable_rounds = 0;
            }
            last = Some(snaps);
            if t0.elapsed() > deadline {
                let detail = self.probe_dump();
                let _ = self.shutdown();
                return Err(FabricError::QuiesceTimeout { detail });
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Phase 3: stop and join.
        Ok(self.shutdown())
    }

    /// Signals every thread to stop and joins them all (stages and
    /// clients), assembling the final report. Safe to call at any point
    /// — all loops are `recv_timeout`-bounded, so no join can hang on a
    /// blocked queue.
    pub fn shutdown(self) -> FabricReport {
        self.ctl.request_stop();
        let FabricCluster {
            replica_shared, client_hubs, started, replicas, downed, clients, ..
        } = self;
        let mut threads_joined = 0;
        let mut latencies = Histogram::new();
        let mut completed = 0;
        for (i, handle) in clients.into_iter().enumerate() {
            let stats = handle.join().unwrap_or_else(|_| panic!("client {i} panicked"));
            completed += stats.completed;
            latencies.merge(&stats.latencies);
            threads_joined += 1;
        }
        let mut reports = Vec::new();
        // Replicas still crashed at shutdown were joined at crash time;
        // their parked durable state is reported (and audited) as-is.
        let mut downed = downed;
        for (i, handle) in replicas.into_iter().enumerate() {
            let join = match handle {
                Some(handle) => handle.join(),
                None => downed.remove(&i).expect("crashed replica state parked"),
            };
            threads_joined += 4;
            let links = replica_shared[i].hub.link_reports();
            reports.push(report_replica(join, links));
        }
        // Tear down the network substrate last: every stage thread is
        // joined, so no send can race a closing socket. No-op on the
        // in-process hub.
        for hub in client_hubs {
            hub.shutdown();
        }
        for shared in &replica_shared {
            shared.hub.shutdown();
        }
        FabricReport {
            wall: started.elapsed(),
            completed_requests: completed,
            latency: LatencySummary::from_hist(&latencies),
            replicas: reports,
            threads_joined,
        }
    }

    /// Human-readable probe dump for error diagnostics, with the tail
    /// of every replica's protocol timeline so a failed run is
    /// diagnosable from its error message alone.
    fn probe_dump(&self) -> String {
        let probes = self
            .replicas
            .iter()
            .flatten()
            .map(|r| {
                let s = r.probe.snapshot();
                format!(
                    "{}: view={} exec={} commit={} events={}",
                    r.id, s.view, s.exec, s.commit, s.events
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        let timelines =
            self.telemetries.iter().map(|t| t.timeline_tail(12)).collect::<Vec<_>>().join("");
        format!("{probes}\nrecorder tails:\n{timelines}")
    }
}

/// The per-replica [`LinkAuth`] (disabled when no link key material).
fn link_auth_for(link_km: &Option<Arc<KeyMaterial>>, i: usize) -> LinkAuth {
    match link_km {
        Some(km) => LinkAuth::new(km.replica(i)),
        None => LinkAuth::disabled(),
    }
}

/// Builds one replica's final report from its joined stage threads,
/// auditing the committed chain end to end before it is reported.
pub(crate) fn report_replica(join: ReplicaJoin, links: Vec<LinkReport>) -> ReplicaReport {
    let replica = &join.replica;
    replica.ledger().verify_chain().expect("ledger chain must verify");
    ReplicaReport {
        id: join.id,
        view: replica.current_view(),
        exec_frontier: replica.execution_frontier(),
        ledger_len: replica.ledger().len(),
        history_digest: replica.ledger().history_digest(),
        state_digest: replica.state_digest(),
        ingress: join.ingress,
        batching: join.batching,
        consensus: join.consensus,
        egress: join.egress,
        session: join.session,
        repair: replica.repair_stats(),
        links,
    }
}

/// Convenience: launch, run to completion, and report.
pub fn run_fabric(cfg: &FabricConfig, deadline: Duration) -> Result<FabricReport, FabricError> {
    FabricCluster::launch(cfg).run_to_completion(deadline)
}
