//! Bounded stage queues and depth gauges — the backpressure fabric.
//!
//! The pipeline's original channels are all unbounded: fine in a closed
//! loop, where clients stop submitting until they hear back, but an
//! *open-loop* load engine keeps offering requests no matter what, and
//! an unbounded ingress→batching queue then grows without limit the
//! moment offered load exceeds capacity. Two pieces close the loop:
//!
//! * [`bounded`] — a capacity-limited MPSC queue with a non-blocking
//!   [`BoundedSender::try_send`] (ingress must never block on a slow
//!   batching stage; it *sheds* instead) and a high-water mark so the
//!   shed policy can start deferring retransmissions before the queue
//!   is hard-full.
//! * [`DepthGauge`] — occupancy tracking (current + peak) wrapped
//!   around the still-unbounded consensus and reply queues, so reports
//!   show where the pipeline actually queues and the batching stage can
//!   defer pulling admissions while consensus is deep (backpressure
//!   propagates ingress ← batching ← consensus without ever bounding
//!   — or dropping — replica-to-replica protocol traffic).
//!
//! Hand-rolled on `Mutex<VecDeque>` + `Condvar` because the vendored
//! crossbeam shim only provides unbounded channels.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Why [`BoundedSender::try_send`] returned the item.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TrySendError<T> {
    /// The queue is at capacity; the caller sheds or defers.
    Full(T),
    /// The receiver is gone.
    Disconnected(T),
}

/// Why [`BoundedReceiver::recv_timeout`] returned empty-handed.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RecvError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

struct Inner<T> {
    buf: VecDeque<T>,
    senders: usize,
    rx_alive: bool,
    /// Deepest the queue has ever been.
    peak: usize,
    /// Items ever accepted.
    enqueued: u64,
}

struct Shared<T> {
    q: Mutex<Inner<T>>,
    avail: Condvar,
    cap: usize,
    /// Live depth mirror, readable without the queue lock (telemetry
    /// samplers poll it while the channel halves live in stage threads).
    gauge: Arc<DepthGauge>,
}

/// Producer half of a bounded queue. Cloneable (MPSC).
pub(crate) struct BoundedSender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of a bounded queue.
pub(crate) struct BoundedReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded MPSC queue of capacity `cap` (≥ 1).
pub(crate) fn bounded<T>(cap: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    assert!(cap >= 1, "queue capacity must be positive");
    let shared = Arc::new(Shared {
        q: Mutex::new(Inner {
            buf: VecDeque::with_capacity(cap.min(1024)),
            senders: 1,
            rx_alive: true,
            peak: 0,
            enqueued: 0,
        }),
        avail: Condvar::new(),
        cap,
        gauge: DepthGauge::new(),
    });
    (BoundedSender { shared: shared.clone() }, BoundedReceiver { shared })
}

impl<T> BoundedSender<T> {
    /// Enqueues without blocking, or hands the item back when the queue
    /// is full or the receiver is gone.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut q = self.shared.q.lock().expect("queue poisoned");
        if !q.rx_alive {
            return Err(TrySendError::Disconnected(item));
        }
        if q.buf.len() >= self.shared.cap {
            return Err(TrySendError::Full(item));
        }
        q.buf.push_back(item);
        q.enqueued += 1;
        let depth = q.buf.len();
        if depth > q.peak {
            q.peak = depth;
        }
        // Inc under the lock: a post-unlock inc could lose the race
        // against the receiver's dec and wrap the mirror to u64::MAX.
        self.shared.gauge.inc();
        drop(q);
        self.shared.avail.notify_one();
        Ok(())
    }

    /// Live depth/peak mirror that outlives the channel halves.
    pub fn gauge(&self) -> Arc<DepthGauge> {
        self.shared.gauge.clone()
    }

    /// Current occupancy (racy by nature; used for high-water checks).
    pub fn len(&self) -> usize {
        self.shared.q.lock().expect("queue poisoned").buf.len()
    }

    /// The fixed capacity this queue was created with.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> BoundedSender<T> {
        self.shared.q.lock().expect("queue poisoned").senders += 1;
        BoundedSender { shared: self.shared.clone() }
    }
}

impl<T> Drop for BoundedSender<T> {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock().expect("queue poisoned");
        q.senders -= 1;
        let last = q.senders == 0;
        drop(q);
        if last {
            // Wake the receiver so it observes the disconnect.
            self.shared.avail.notify_all();
        }
    }
}

impl<T> BoundedReceiver<T> {
    /// Dequeues, waiting up to `timeout` for an item.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.shared.q.lock().expect("queue poisoned");
        loop {
            if let Some(item) = q.buf.pop_front() {
                self.shared.gauge.dec();
                drop(q);
                return Ok(item);
            }
            if q.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(RecvError::Timeout);
            }
            let (guard, _) = self.shared.avail.wait_timeout(q, left).expect("queue poisoned");
            q = guard;
        }
    }

    /// Dequeues without waiting.
    pub fn try_recv(&self) -> Option<T> {
        let mut q = self.shared.q.lock().expect("queue poisoned");
        let item = q.buf.pop_front();
        if item.is_some() {
            self.shared.gauge.dec();
        }
        item
    }

    /// `(peak depth, items ever enqueued)` — the occupancy counters the
    /// consuming stage folds into its report at exit.
    pub fn occupancy(&self) -> (usize, u64) {
        let q = self.shared.q.lock().expect("queue poisoned");
        (q.peak, q.enqueued)
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        self.shared.q.lock().expect("queue poisoned").rx_alive = false;
    }
}

/// Occupancy tracking for a queue whose channel stays unbounded
/// (consensus, replies): producers `inc` on send, the consumer `dec`
/// on receive; `peak` records the deepest observed backlog.
#[derive(Default)]
pub(crate) struct DepthGauge {
    depth: AtomicU64,
    peak: AtomicU64,
}

impl DepthGauge {
    pub fn new() -> Arc<DepthGauge> {
        Arc::new(DepthGauge::default())
    }

    /// One item entered the queue.
    pub fn inc(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(d, Ordering::Relaxed);
    }

    /// One item left the queue.
    pub fn dec(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current depth.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Deepest backlog observed.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_counters() {
        let (tx, rx) = bounded::<u32>(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), i);
        }
        let (peak, enqueued) = rx.occupancy();
        assert_eq!(peak, 5);
        assert_eq!(enqueued, 5);
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn receiver_drop_disconnects_senders() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
    }

    #[test]
    fn sender_drop_disconnects_after_drain() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        tx.try_send(7).unwrap();
        drop(tx);
        // One sender still alive: timeout, not disconnect.
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)).unwrap(), 7);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvError::Timeout));
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvError::Disconnected));
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = bounded::<u32>(4);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.try_send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 42);
        h.join().unwrap();
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = DepthGauge::new();
        g.inc();
        g.inc();
        g.dec();
        g.inc();
        assert_eq!(g.depth(), 2);
        assert_eq!(g.peak(), 2);
    }
}
