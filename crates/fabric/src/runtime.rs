//! Shared runtime plumbing: the cluster-wide clock/stop handle (generic
//! over the [`Hub`] substrate), the encode-once framing helper every
//! stage uses on its egress side, and [`LinkAuth`] — per-peer MAC
//! tagging of replica→replica frames.

use poe_crypto::provider::{AuthTag, CryptoProvider};
use poe_crypto::CryptoMode;
use poe_kernel::codec::{write_envelope_parts, ScratchPool};
use poe_kernel::ids::NodeId;
use poe_kernel::messages::{Envelope, ProtocolMsg};
use poe_kernel::time::Time;
use poe_kernel::wire::WireBytes;
use poe_net::Hub;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How long any stage blocks on its queue before re-checking the stop
/// flag (bounds shutdown latency; every loop in the fabric is
/// `recv_timeout(TICK)`-shaped, which is what makes join-on-shutdown
/// deadlock-free).
pub(crate) const TICK: std::time::Duration = std::time::Duration::from_millis(10);

/// The cluster-wide control block: one stop flag and one epoch shared
/// by every thread of a cluster, across every hub instance. On the
/// in-proc substrate all nodes share one hub *and* one ctl; on the
/// socket substrate each node has its own hub but (within one process)
/// still shares the ctl.
pub(crate) struct ClusterCtl {
    stop: AtomicBool,
    epoch: Instant,
}

impl ClusterCtl {
    pub fn new() -> Arc<ClusterCtl> {
        Arc::new(ClusterCtl { stop: AtomicBool::new(false), epoch: Instant::now() })
    }

    /// The wall clock as automaton time.
    pub fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Asks every stage and client thread to wind down.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown was requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// State shared by every thread of one node: its network hub, plus the
/// cluster control block.
pub(crate) struct ClusterShared<H: Hub> {
    pub hub: H,
    ctl: Arc<ClusterCtl>,
}

impl<H: Hub> ClusterShared<H> {
    /// A shared handle over `hub` joining an existing cluster's control
    /// block (sibling nodes of one cluster).
    pub fn with_ctl(hub: H, ctl: Arc<ClusterCtl>) -> Arc<ClusterShared<H>> {
        Arc::new(ClusterShared { hub, ctl })
    }

    /// The wall clock as automaton time.
    pub fn now(&self) -> Time {
        self.ctl.now()
    }

    /// Asks every thread sharing this ctl to wind down.
    pub fn request_stop(&self) {
        self.ctl.request_stop();
    }

    /// Whether shutdown was requested.
    pub fn stopped(&self) -> bool {
        self.ctl.stopped()
    }
}

/// Encodes `msg` once into a refcounted frame ready for the hub (a
/// broadcast hands the *same* frame to every recipient queue). The
/// scratch pool makes the encode itself allocation-free once warm; the
/// single copy lands in the frame's exact-size shared buffer.
///
/// Link authentication is [`AuthTag::None`] here: this is the
/// trusted-channel path (in-process hub, or client traffic whose
/// authenticity rides on per-request signatures). Authenticated
/// replica links go through [`LinkAuth::encode_to`] instead.
pub(crate) fn encode_frame(scratch: &mut ScratchPool, from: NodeId, msg: ProtocolMsg) -> WireBytes {
    let env = Envelope { from, auth: AuthTag::None, msg };
    let buf = scratch.encode_envelope(&env);
    let frame = WireBytes::copy_from(&buf);
    scratch.recycle(buf);
    frame
}

/// Per-peer MAC (or signature) tagging of replica→replica frames — the
/// paper's MAC-cluster trade-off made concrete. With pairwise MACs
/// (HMAC/CMAC) every recipient needs a *different* tag, so a broadcast
/// can no longer share one encoded frame: the message body is encoded
/// once, but each peer gets its own envelope assembly. With signatures
/// (Ed25519) one tag convinces everyone and frame-sharing survives.
#[derive(Clone)]
pub(crate) struct LinkAuth {
    provider: Option<CryptoProvider>,
}

impl LinkAuth {
    /// Link authentication off: `encode_frame` semantics everywhere.
    pub fn disabled() -> LinkAuth {
        LinkAuth { provider: None }
    }

    /// Tags outbound replica frames with `provider` (a no-op provider
    /// in [`CryptoMode::None`] degrades to disabled).
    pub fn new(provider: CryptoProvider) -> LinkAuth {
        match provider.mode() {
            CryptoMode::None => LinkAuth::disabled(),
            _ => LinkAuth { provider: Some(provider) },
        }
    }

    /// Whether frames carry tags at all.
    pub fn enabled(&self) -> bool {
        self.provider.is_some()
    }

    /// Whether one tag is valid for every peer (signature modes), so a
    /// broadcast can still share its encoded frame.
    pub fn shared_tag(&self) -> bool {
        matches!(self.provider.as_ref().map(CryptoProvider::mode), Some(CryptoMode::Ed25519) | None)
    }

    /// Encodes `msg` with a tag addressed to replica `peer`.
    pub fn encode_to(
        &self,
        scratch: &mut ScratchPool,
        from: NodeId,
        peer: u32,
        msg: &ProtocolMsg,
    ) -> WireBytes {
        let provider = self.provider.as_ref().expect("LinkAuth::encode_to when disabled");
        let msg_buf = scratch.encode_msg(msg);
        let tag = provider.authenticate(peer, &msg_buf);
        let mut buf = scratch.take();
        write_envelope_parts(&mut buf, from, &tag, &msg_buf);
        let frame = WireBytes::copy_from(&buf);
        scratch.recycle(buf);
        scratch.recycle(msg_buf);
        frame
    }

    /// Encodes `msg` once with a shared (signature) tag.
    pub fn encode_shared(
        &self,
        scratch: &mut ScratchPool,
        from: NodeId,
        msg: &ProtocolMsg,
    ) -> WireBytes {
        let provider = self.provider.as_ref().expect("LinkAuth::encode_shared when disabled");
        let msg_buf = scratch.encode_msg(msg);
        // Signature tags ignore the peer argument.
        let tag = provider.authenticate(provider.index(), &msg_buf);
        let mut buf = scratch.take();
        write_envelope_parts(&mut buf, from, &tag, &msg_buf);
        let frame = WireBytes::copy_from(&buf);
        scratch.recycle(buf);
        scratch.recycle(msg_buf);
        frame
    }

    /// Verifies an inbound replica frame's tag over its authenticated
    /// region (`msg_bytes`). True when auth is disabled.
    pub fn verify(&self, from_index: u32, msg_bytes: &[u8], tag: &AuthTag) -> bool {
        match &self.provider {
            Some(p) => p.check(from_index, msg_bytes, tag),
            None => true,
        }
    }
}
