//! Shared runtime plumbing: the cluster-wide clock/stop handle and the
//! encode-once framing helper every stage uses on its egress side.

use poe_crypto::provider::AuthTag;
use poe_kernel::codec::ScratchPool;
use poe_kernel::ids::NodeId;
use poe_kernel::messages::{Envelope, ProtocolMsg};
use poe_kernel::time::Time;
use poe_kernel::wire::WireBytes;
use poe_net::InprocHub;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How long any stage blocks on its queue before re-checking the stop
/// flag (bounds shutdown latency; every loop in the fabric is
/// `recv_timeout(TICK)`-shaped, which is what makes join-on-shutdown
/// deadlock-free).
pub(crate) const TICK: std::time::Duration = std::time::Duration::from_millis(10);

/// State shared by every thread of one cluster: the in-process hub, the
/// stop flag, and the epoch mapping the wall clock onto the kernel's
/// [`Time`] (nanoseconds since cluster launch).
pub(crate) struct ClusterShared {
    pub hub: InprocHub,
    stop: AtomicBool,
    epoch: Instant,
}

impl ClusterShared {
    pub fn new(hub: InprocHub) -> Arc<ClusterShared> {
        Arc::new(ClusterShared { hub, stop: AtomicBool::new(false), epoch: Instant::now() })
    }

    /// The wall clock as automaton time.
    pub fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Asks every stage and client thread to wind down.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown was requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Encodes `msg` once into a refcounted frame ready for the hub (a
/// broadcast hands the *same* frame to every recipient queue). The
/// scratch pool makes the encode itself allocation-free once warm; the
/// single copy lands in the frame's exact-size shared buffer.
///
/// Link authentication is [`AuthTag::None`]: inside one process the hub
/// is the trusted datacenter network of the paper's model (sender
/// identity travels in the envelope, exactly like the simulator's
/// `Event::Deliver { from, .. }` contract). A real socket transport
/// would authenticate here — and per-peer MAC tags would also end
/// frame sharing, the same trade-off the paper notes for MAC clusters.
pub(crate) fn encode_frame(scratch: &mut ScratchPool, from: NodeId, msg: ProtocolMsg) -> WireBytes {
    let env = Envelope { from, auth: AuthTag::None, msg };
    let buf = scratch.encode_envelope(&env);
    let frame = WireBytes::copy_from(&buf);
    scratch.recycle(buf);
    frame
}
