//! Transport selection: how a [`crate::FabricCluster`] gets its hubs.
//!
//! A [`Transport`] hands out one [`Hub`] per node. The in-proc
//! transport clones a single shared [`InprocHub`] — every node is a
//! thread of one process. The TCP transport pre-binds one [`TcpHub`]
//! per replica on loopback and meshes them over real sockets, so the
//! same cluster code runs the socket substrate in-process (benches,
//! supervision tests) — while separate `poe-node` processes build the
//! equivalent mesh by hand from addresses.

use poe_crypto::{CryptoMode, KeyMaterial};
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::ReplicaId;
use poe_net::{Hub, InprocHub, TcpConfig, TcpHub};
use std::net::SocketAddr;
use std::sync::Arc;

/// Seed salt separating link-MAC keys from the client-signing key
/// space (both derive deterministically from the cluster seed, so
/// every `poe-node` process computes identical pairwise keys).
const LINK_KEY_SALT: u64 = 0x4C49_4E4B; // "LINK"

/// Key material for link authentication: pairwise MAC keys (and
/// link-signature keys) among the replicas, derived from the cluster
/// seed. Deterministic — every process of one cluster agrees.
pub fn link_key_material(cluster: &ClusterConfig, mode: CryptoMode) -> Arc<KeyMaterial> {
    KeyMaterial::generate(
        cluster.n,
        0,
        cluster.nf(),
        mode,
        cluster.cert_scheme,
        cluster.seed ^ LINK_KEY_SALT,
    )
}

/// The cluster-instance id both handshake sides must present — derived
/// from the seed so independently launched `poe-node` processes agree.
pub fn cluster_instance_id(cluster: &ClusterConfig) -> u64 {
    cluster.seed ^ 0x506F_4521 // "PoE!"
}

/// Hands out per-node hubs for one cluster launch.
pub trait Transport {
    /// The hub type every node of this cluster uses.
    type Hub: Hub;

    /// The hub replica `id` registers on and sends through.
    fn replica_hub(&mut self, id: ReplicaId) -> Self::Hub;

    /// A hub for a client-side endpoint owning the client-id block
    /// `base .. base + count` (one closed-loop client, or one open-loop
    /// driver multiplexing a shard of sessions).
    fn client_hub(&mut self, base: u32, count: u32) -> Self::Hub;
}

/// The in-process transport: one shared hub, every node a clone.
#[derive(Default)]
pub struct InprocTransport {
    hub: InprocHub,
}

impl InprocTransport {
    /// A fresh in-process hub.
    pub fn new() -> InprocTransport {
        InprocTransport { hub: InprocHub::new() }
    }
}

impl Transport for InprocTransport {
    type Hub = InprocHub;

    fn replica_hub(&mut self, _id: ReplicaId) -> InprocHub {
        self.hub.clone()
    }

    fn client_hub(&mut self, _base: u32, _count: u32) -> InprocHub {
        self.hub.clone()
    }
}

/// The loopback TCP transport: one socket hub per replica, fully
/// meshed over `127.0.0.1` — real sockets, real framing, real
/// supervision, one process. Client hubs dial the same mesh.
pub struct TcpTransport {
    cluster_id: u64,
    n: usize,
    hubs: Vec<TcpHub>,
    peers: Vec<(u32, SocketAddr)>,
}

impl TcpTransport {
    /// Binds one listening hub per replica on loopback and meshes them.
    /// `link_auth` keys the peer-identity handshakes (and must match
    /// the cluster's [`crate::FabricConfig::link_auth`] so frames
    /// verify at ingress).
    pub fn loopback(
        cluster: &ClusterConfig,
        link_auth: Option<CryptoMode>,
    ) -> std::io::Result<TcpTransport> {
        let cluster_id = cluster_instance_id(cluster);
        let link_km = match link_auth {
            Some(mode) if mode != CryptoMode::None => Some(link_key_material(cluster, mode)),
            _ => None,
        };
        let listen: SocketAddr = "127.0.0.1:0".parse().expect("loopback addr");
        let hubs: Vec<TcpHub> = (0..cluster.n)
            .map(|i| {
                let mut cfg = TcpConfig::replica(i as u32, cluster.n, cluster_id);
                if let Some(km) = &link_km {
                    cfg = cfg.with_auth(km.replica(i));
                }
                TcpHub::bind(cfg, listen)
            })
            .collect::<std::io::Result<_>>()?;
        let peers: Vec<(u32, SocketAddr)> = hubs
            .iter()
            .enumerate()
            .map(|(i, h)| (i as u32, h.local_addr().expect("bound hub has an address")))
            .collect();
        for h in &hubs {
            h.set_peers(&peers);
        }
        Ok(TcpTransport { cluster_id, n: cluster.n, hubs, peers })
    }

    /// The replica hubs (e.g. to sever a replica's connections mid-run
    /// via [`TcpHub::drop_links`]).
    pub fn replica_hubs(&self) -> &[TcpHub] {
        &self.hubs
    }

    /// The replica listen addresses of the mesh.
    pub fn peer_addrs(&self) -> &[(u32, SocketAddr)] {
        &self.peers
    }
}

impl Transport for TcpTransport {
    type Hub = TcpHub;

    fn replica_hub(&mut self, id: ReplicaId) -> TcpHub {
        self.hubs[id.index()].clone()
    }

    fn client_hub(&mut self, base: u32, count: u32) -> TcpHub {
        // Client links carry no link MACs: client authenticity rides on
        // per-request signatures checked at admission.
        let hub = TcpHub::connect_only(TcpConfig::clients(base, count, self.n, self.cluster_id));
        hub.set_peers(&self.peers);
        hub
    }
}
