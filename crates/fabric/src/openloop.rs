//! The open-loop load engine: drive a fabric cluster at a *target* rate
//! and measure what it actually sustains.
//!
//! Closed-loop clients (one request in flight per window slot) measure
//! latency but can never saturate the system — when the cluster slows
//! down, so does the offered load. This engine severs that feedback: a
//! few driver threads multiplex 10⁵–10⁶ simulated client sessions
//! ([`SessionMux`]) and submit on an arrival clock ([`ArrivalGen`],
//! fixed-rate or Poisson) no matter how the cluster is doing. Sweeping
//! the target rate yields the latency-vs-throughput curve up to (and
//! past) saturation, and per-thread CPU accounting normalizes the
//! result to **requests/sec/core** with the drivers excluded.
//!
//! The engine reuses the whole fabric harness: replicas come up via the
//! headless cluster launch (no closed-loop client threads); each driver
//! registers one *client group* on the hub — a contiguous `ClientId`
//! range multiplexed onto a single receive channel — and the session
//! offset encoded in the high bits of `req_id` recovers the session
//! from any reply in O(1). Shutdown reuses `run_to_completion`: with
//! zero client threads its drain phase is trivially satisfied, and the
//! quiesce/convergence machinery applies unchanged, so even an overload
//! run ends with byte-identical history digests or an error.
//!
//! Open-loop semantics on loss: a request the cluster sheds under
//! overload is *abandoned* (its session reaped after
//! [`OpenLoopConfig::abandon_after`]), never retried — retrying would
//! re-close the loop. Shed work is visible instead in the replicas'
//! `shed_retransmits` / `shed_full` counters and the mux's `abandoned`.

use crate::cluster::{FabricCluster, FabricError, FabricReport, LatencySummary};
use crate::runtime::{encode_frame, ClusterCtl, ClusterShared, TICK};
use crate::transport::{cluster_instance_id, InprocTransport, Transport};
use crate::FabricConfig;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use poe_crypto::ed25519::Signature;
use poe_crypto::{CryptoMode, KeyMaterial};
use poe_kernel::codec::{decode_envelope_shared, ScratchPool};
use poe_kernel::ids::{ClientId, NodeId};
use poe_kernel::messages::ProtocolMsg;
use poe_kernel::request::ClientRequest;
use poe_kernel::time::Time;
use poe_kernel::wire::WireBytes;
use poe_net::{Hub, TcpConfig, TcpHub};
use poe_telemetry::{AtomicHistogram, Histogram};
use poe_workload::{ArrivalGen, ArrivalProcess, MuxStats, SessionMux, YcsbConfig, YcsbWorkload};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-wake arrival burst cap: a stalled driver catches up at most this
/// many arrivals per iteration instead of building an unbounded burst.
const BURST_CAP: usize = 256;

/// How often a driver sweeps its shard for abandoned in-flight requests.
const REAP_EVERY: Duration = Duration::from_millis(100);

/// Configuration of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Cluster shape (protocol, crypto, batch size, tuning). The
    /// engine overrides `n_clients` to cover the session population.
    pub fabric: FabricConfig,
    /// Simulated client sessions, split evenly across the drivers.
    pub sessions: u32,
    /// Driver threads (each owns one session shard + hub client group).
    pub drivers: usize,
    /// Offered load in requests/second, across all drivers.
    pub target_rps: f64,
    /// Arrival process (Poisson exposes queueing near saturation).
    pub process: ArrivalProcess,
    /// Ramp-up excluded from the measured window.
    pub warmup: Duration,
    /// The measured window.
    pub measure: Duration,
    /// In-flight age after which a session is reaped (the request was
    /// shed or lost; open loop never retries it).
    pub abandon_after: Duration,
    /// Seed for arrival schedules and workload streams.
    pub seed: u64,
    /// In-run scrape cadence for the time-series samples
    /// ([`OpenLoopReport::timeseries`]); `Duration::ZERO` disables the
    /// sampler entirely.
    pub sample_every: Duration,
}

impl OpenLoopConfig {
    /// Paper-shaped defaults on top of an existing cluster config:
    /// 100 k sessions over two drivers, Poisson arrivals, 1 s warmup,
    /// 4 s measured.
    pub fn new(fabric: FabricConfig, target_rps: f64) -> OpenLoopConfig {
        OpenLoopConfig {
            fabric,
            sessions: 100_000,
            drivers: 2,
            target_rps,
            process: ArrivalProcess::Poisson,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(4),
            abandon_after: Duration::from_secs(2),
            seed: 42,
            sample_every: Duration::from_millis(250),
        }
    }
}

/// What one driver thread reports back.
#[derive(Default)]
struct DriverOut {
    mux: MuxStats,
    /// Latency histogram (ns) for requests both submitted and completed
    /// inside the measured window — bounded memory no matter how long
    /// or hot the run is.
    latencies: Histogram,
    measured_submitted: u64,
    measured_completed: u64,
}

/// Live run state shared between the drivers and the in-run sampler:
/// cumulative all-window counts plus an all-window latency histogram,
/// so the sampler can derive per-tick rates and interval quantiles via
/// [`Histogram::delta_since`] without perturbing the drivers.
#[derive(Default)]
struct LiveCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    latency: AtomicHistogram,
}

/// One in-run scrape of the whole engine: driver-side progress plus the
/// replicas' queue depths and shed counters at that instant. Rendered
/// into the open-loop time-series CSV by the benches.
#[derive(Clone, Copy, Debug)]
pub struct TickSample {
    /// Milliseconds since the run epoch (warmup included).
    pub t_ms: u64,
    /// Cumulative submissions (all windows) at sample time.
    pub submitted: u64,
    /// Cumulative completions (all windows) at sample time.
    pub completed: u64,
    /// Completions per second over this tick alone.
    pub tick_rps: f64,
    /// p50 latency (µs) over completions in this tick alone.
    pub p50_us: u64,
    /// p99 latency (µs) over completions in this tick alone.
    pub p99_us: u64,
    /// Deepest batching-stage queue across replicas at sample time.
    pub batch_depth: u64,
    /// Deepest consensus-stage queue across replicas at sample time.
    pub cons_depth: u64,
    /// Cumulative shed client requests across replicas at sample time.
    pub shed: u64,
}

/// The outcome of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// The offered rate this run targeted.
    pub target_rps: f64,
    /// Measured-window completions per second — the achieved rate.
    pub achieved_rps: f64,
    /// Requests submitted during the measured window.
    pub measured_submitted: u64,
    /// Requests submitted *and* completed during the measured window.
    pub measured_completed: u64,
    /// Latency over measured-window completions.
    pub latency: LatencySummary,
    /// Aggregate session-mux counters (all windows).
    pub mux: MuxStats,
    /// The measured window length.
    pub measure: Duration,
    /// The underlying cluster report (replica stats, convergence).
    pub fabric: FabricReport,
    /// In-run scrapes at [`OpenLoopConfig::sample_every`] cadence
    /// (empty when the sampler is disabled or the transport is
    /// external).
    pub timeseries: Vec<TickSample>,
}

impl OpenLoopReport {
    /// Completed requests (all windows) per replica-CPU-second —
    /// requests/sec/core with the load generator excluded. `None` when
    /// the platform reported no per-thread CPU accounting.
    pub fn requests_per_sec_per_core(&self) -> Option<f64> {
        let cpu = self.fabric.replica_cpu_secs();
        (cpu > 0.0).then(|| self.mux.completed as f64 / cpu)
    }

    /// Client requests shed by ingress backpressure, summed over
    /// replicas (`shed_full` + `shed_retransmits`).
    pub fn total_shed(&self) -> u64 {
        self.fabric.replicas.iter().map(|r| r.ingress.shed_full + r.ingress.shed_retransmits).sum()
    }

    /// True when every replica converged to the same committed history.
    pub fn converged(&self) -> bool {
        self.fabric.converged()
    }

    /// Fraction of the offered (submitted) measured load that completed
    /// in-window — below saturation this approaches 1.
    pub fn completion_ratio(&self) -> f64 {
        if self.measured_submitted == 0 {
            return 0.0;
        }
        self.measured_completed as f64 / self.measured_submitted as f64
    }
}

/// Runs one open-loop point: launch a headless cluster, drive it at
/// `cfg.target_rps` through the warmup + measured windows, drain, then
/// quiesce and join via the regular shutdown machinery. `deadline`
/// bounds the post-drive quiesce phase.
pub fn run_open_loop(
    cfg: &OpenLoopConfig,
    deadline: Duration,
) -> Result<OpenLoopReport, FabricError> {
    run_open_loop_with(cfg, &mut InprocTransport::new(), deadline)
}

/// [`run_open_loop`] over an explicit transport: each driver's client
/// group registers on a transport-provided hub, so the same engine
/// drives the in-process substrate or a real TCP mesh.
pub fn run_open_loop_with<H: Hub, T: Transport<Hub = H>>(
    cfg: &OpenLoopConfig,
    transport: &mut T,
    deadline: Duration,
) -> Result<OpenLoopReport, FabricError> {
    assert!(cfg.drivers >= 1, "need at least one driver");
    assert!(cfg.sessions >= cfg.drivers as u32, "fewer sessions than drivers");
    let signed = cfg.fabric.cluster.crypto_mode != CryptoMode::None;
    let mut fabric_cfg = cfg.fabric.clone();
    // Key material must cover every session id the drivers will use —
    // but Ed25519 key derivation is linear in `n_clients`, so unsigned
    // runs (where client keys are never touched) keep it at 1.
    fabric_cfg.n_clients = if signed { cfg.sessions as usize } else { 1 };
    let mut cluster = FabricCluster::launch_headless_with(&fabric_cfg, transport);
    let ctl = cluster.ctl();
    let km = cluster.key_material();
    let n = fabric_cfg.cluster.n;
    let nf = fabric_cfg.cluster.nf();

    let epoch_ns = ctl.now().0;
    let warmup_end_ns = epoch_ns + cfg.warmup.as_nanos() as u64;
    let measure_end_ns = warmup_end_ns + cfg.measure.as_nanos() as u64;

    // Shard the session population: driver d owns `base .. base+count`.
    let per = cfg.sessions / cfg.drivers as u32;
    let extra = cfg.sessions % cfg.drivers as u32;
    let live = Arc::new(LiveCounters::default());
    let mut base = 0u32;
    let handles: Vec<std::thread::JoinHandle<DriverOut>> = (0..cfg.drivers)
        .map(|d| {
            let count = per + u32::from((d as u32) < extra);
            let hub = transport.client_hub(base, count);
            cluster.adopt_client_hub(hub.clone());
            let rx = hub.register_client_group(base, count);
            let drv = Driver {
                shared: ClusterShared::with_ctl(hub, ctl.clone()),
                rx,
                mux: SessionMux::new(base, count, nf),
                gen: ArrivalGen::new(
                    cfg.process,
                    cfg.target_rps / cfg.drivers as f64,
                    cfg.seed ^ (0xA11CE + d as u64),
                ),
                source: YcsbWorkload::new(YcsbConfig {
                    seed: cfg.seed ^ (0x09E17 + d as u64),
                    ..cfg.fabric.ycsb.clone()
                }),
                km: signed.then(|| km.clone()),
                n,
                base,
                epoch_ns,
                warmup_end_ns,
                measure_end_ns,
                abandon_after: cfg.abandon_after,
                live: live.clone(),
            };
            base += count;
            std::thread::Builder::new()
                .name(format!("driver-{d}"))
                .spawn(move || drv.run())
                .expect("spawn driver")
        })
        .collect();

    // In-run sampler: while the drivers push load, the launcher thread
    // periodically scrapes the live counters and every replica's
    // telemetry into one time-series row. Interval quantiles come from
    // histogram snapshot deltas, so each tick stands on its own.
    let mut timeseries = Vec::new();
    if cfg.sample_every > Duration::ZERO {
        let mut prev_hist = Histogram::new();
        let mut prev_completed = 0u64;
        let mut prev_ns = ctl.now().0;
        loop {
            let now0 = ctl.now().0;
            if now0 >= measure_end_ns {
                break;
            }
            std::thread::sleep(cfg.sample_every.min(Duration::from_nanos(measure_end_ns - now0)));
            let now_ns = ctl.now().0;
            let cur_hist = live.latency.snapshot();
            let tick = cur_hist.delta_since(&prev_hist);
            let completed = live.completed.load(Ordering::Relaxed);
            let dt_s = (now_ns - prev_ns) as f64 / 1e9;
            let (mut batch_depth, mut cons_depth, mut shed) = (0u64, 0u64, 0u64);
            for t in cluster.telemetries() {
                let (b, c) = t.queue_depths();
                batch_depth = batch_depth.max(b);
                cons_depth = cons_depth.max(c);
                shed += t.shed_total();
            }
            timeseries.push(TickSample {
                t_ms: (now_ns - epoch_ns) / 1_000_000,
                submitted: live.submitted.load(Ordering::Relaxed),
                completed,
                tick_rps: (completed - prev_completed) as f64 / dt_s.max(1e-9),
                p50_us: if tick.count() == 0 { 0 } else { tick.quantile(0.5) / 1_000 },
                p99_us: if tick.count() == 0 { 0 } else { tick.quantile(0.99) / 1_000 },
                batch_depth,
                cons_depth,
                shed,
            });
            prev_hist = cur_hist;
            prev_completed = completed;
            prev_ns = now_ns;
        }
    }

    let mut out = DriverOut::default();
    for (d, h) in handles.into_iter().enumerate() {
        let one = h.join().unwrap_or_else(|_| panic!("driver {d} panicked"));
        merge_driver_out(&mut out, one);
    }

    // Drivers are done; the regular three-phase shutdown takes over
    // (client phase is trivially complete — there are no client threads).
    let fabric = cluster.run_to_completion(deadline)?;
    let achieved_rps = out.measured_completed as f64 / cfg.measure.as_secs_f64().max(1e-9);
    Ok(OpenLoopReport {
        target_rps: cfg.target_rps,
        achieved_rps,
        measured_submitted: out.measured_submitted,
        measured_completed: out.measured_completed,
        latency: LatencySummary::from_hist(&out.latencies),
        mux: out.mux,
        measure: cfg.measure,
        fabric,
        timeseries,
    })
}

/// Drive-side outcome of an external (multi-process) open-loop run.
/// The replica-side reports live in the remote `poe-node` processes.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// The offered rate this run targeted.
    pub target_rps: f64,
    /// Measured-window completions per second.
    pub achieved_rps: f64,
    /// Requests submitted during the measured window.
    pub measured_submitted: u64,
    /// Requests submitted *and* completed during the measured window.
    pub measured_completed: u64,
    /// Latency over measured-window completions.
    pub latency: LatencySummary,
    /// Aggregate session-mux counters (all windows).
    pub mux: MuxStats,
    /// The measured window length.
    pub measure: Duration,
}

/// Drives an *externally launched* cluster — separate `poe-node`
/// processes listening on `peers` — at `cfg.target_rps` through the
/// warmup + measured windows, then drains and disconnects.
/// `cfg.fabric` must match what the nodes were launched with (seed, n,
/// crypto): client key material and the handshake cluster-instance id
/// both derive from it.
pub fn drive_external(cfg: &OpenLoopConfig, peers: &[(u32, SocketAddr)]) -> DriveReport {
    assert!(cfg.drivers >= 1, "need at least one driver");
    assert!(cfg.sessions >= cfg.drivers as u32, "fewer sessions than drivers");
    let cluster = &cfg.fabric.cluster;
    let signed = cluster.crypto_mode != CryptoMode::None;
    // Must mirror the nodes' key material (they verify these signatures).
    let n_client_keys = if signed { cfg.sessions as usize } else { 1 };
    let km = KeyMaterial::generate(
        cluster.n,
        n_client_keys,
        cluster.nf(),
        cluster.crypto_mode,
        cluster.cert_scheme,
        cluster.seed,
    );
    let cluster_id = cluster_instance_id(cluster);
    let n = cluster.n;
    let nf = cluster.nf();
    let ctl = ClusterCtl::new();
    let epoch_ns = ctl.now().0;
    let warmup_end_ns = epoch_ns + cfg.warmup.as_nanos() as u64;
    let measure_end_ns = warmup_end_ns + cfg.measure.as_nanos() as u64;

    let per = cfg.sessions / cfg.drivers as u32;
    let extra = cfg.sessions % cfg.drivers as u32;
    let live = Arc::new(LiveCounters::default());
    let mut base = 0u32;
    let mut hubs: Vec<TcpHub> = Vec::new();
    let handles: Vec<std::thread::JoinHandle<DriverOut>> = (0..cfg.drivers)
        .map(|d| {
            let count = per + u32::from((d as u32) < extra);
            let hub = TcpHub::connect_only(TcpConfig::clients(base, count, n, cluster_id));
            hub.set_peers(peers);
            hubs.push(hub.clone());
            let rx = hub.register_client_group(base, count);
            let drv = Driver {
                shared: ClusterShared::with_ctl(hub, ctl.clone()),
                rx,
                mux: SessionMux::new(base, count, nf),
                gen: ArrivalGen::new(
                    cfg.process,
                    cfg.target_rps / cfg.drivers as f64,
                    cfg.seed ^ (0xA11CE + d as u64),
                ),
                source: YcsbWorkload::new(YcsbConfig {
                    seed: cfg.seed ^ (0x09E17 + d as u64),
                    ..cfg.fabric.ycsb.clone()
                }),
                km: signed.then(|| km.clone()),
                n,
                base,
                epoch_ns,
                warmup_end_ns,
                measure_end_ns,
                abandon_after: cfg.abandon_after,
                live: live.clone(),
            };
            base += count;
            std::thread::Builder::new()
                .name(format!("driver-{d}"))
                .spawn(move || drv.run())
                .expect("spawn driver")
        })
        .collect();

    let mut out = DriverOut::default();
    for (d, h) in handles.into_iter().enumerate() {
        let one = h.join().unwrap_or_else(|_| panic!("driver {d} panicked"));
        merge_driver_out(&mut out, one);
    }
    for hub in hubs {
        hub.shutdown();
    }
    DriveReport {
        target_rps: cfg.target_rps,
        achieved_rps: out.measured_completed as f64 / cfg.measure.as_secs_f64().max(1e-9),
        measured_submitted: out.measured_submitted,
        measured_completed: out.measured_completed,
        latency: LatencySummary::from_hist(&out.latencies),
        mux: out.mux,
        measure: cfg.measure,
    }
}

fn merge_driver_out(out: &mut DriverOut, one: DriverOut) {
    out.mux.submitted += one.mux.submitted;
    out.mux.completed += one.mux.completed;
    out.mux.no_idle_session += one.mux.no_idle_session;
    out.mux.abandoned += one.mux.abandoned;
    out.measured_submitted += one.measured_submitted;
    out.measured_completed += one.measured_completed;
    out.latencies.merge(&one.latencies);
}

struct Driver<H: Hub> {
    shared: Arc<ClusterShared<H>>,
    rx: Receiver<WireBytes>,
    mux: SessionMux,
    gen: ArrivalGen,
    source: YcsbWorkload,
    /// `Some` when the cluster authenticates clients.
    km: Option<Arc<KeyMaterial>>,
    n: usize,
    base: u32,
    epoch_ns: u64,
    warmup_end_ns: u64,
    measure_end_ns: u64,
    abandon_after: Duration,
    /// Shared with the in-run sampler (all-window counts + histogram).
    live: Arc<LiveCounters>,
}

impl<H: Hub> Driver<H> {
    fn run(mut self) -> DriverOut {
        let mut out = DriverOut::default();
        let mut scratch = ScratchPool::new();
        let signer = self.km.take().map(|km| {
            move |client: ClientId, req_id: u64, op: &[u8]| -> Signature {
                let bytes = ClientRequest::signing_bytes(client, req_id, op);
                km.client(client.0 as usize).sign(&bytes)
            }
        });
        let signer_ref: Option<poe_workload::Signer<'_>> = signer.as_ref().map(|f| f as _);
        let mut next_reap_ns = self.epoch_ns + REAP_EVERY.as_nanos() as u64;
        loop {
            let now_ns = self.shared.now().0;
            if now_ns >= self.measure_end_ns || self.shared.stopped() {
                break;
            }
            // 1. Submit every arrival that is due (burst-capped).
            let due = self.gen.due_by(now_ns - self.epoch_ns, BURST_CAP);
            for _ in 0..due {
                let Some(req) = self.mux.begin(Time(now_ns), &mut self.source, signer_ref) else {
                    continue; // Population busy — counted by the mux.
                };
                if now_ns >= self.warmup_end_ns {
                    out.measured_submitted += 1;
                }
                self.live.submitted.fetch_add(1, Ordering::Relaxed);
                let client = req.client;
                let target = self.mux.view_hint().primary(self.n);
                let frame =
                    encode_frame(&mut scratch, NodeId::Client(client), ProtocolMsg::Request(req));
                self.shared.hub.send(NodeId::Replica(target), frame);
            }
            // 2. Drain replies without blocking.
            while let Ok(frame) = self.rx.try_recv() {
                self.on_frame(&frame, &mut out);
            }
            // 3. Periodically reap sessions whose request was shed.
            if now_ns >= next_reap_ns {
                self.mux.reap(
                    Time(now_ns),
                    poe_kernel::time::Duration::from_nanos(self.abandon_after.as_nanos() as u64),
                );
                next_reap_ns = now_ns + REAP_EVERY.as_nanos() as u64;
            }
            // 4. Sleep until the next arrival (or a reply, whichever
            // first) — bounded by TICK so stop flags stay responsive.
            let until = self.gen.ns_until_next(self.shared.now().0 - self.epoch_ns);
            if until > 0 {
                let wait = Duration::from_nanos(until).min(TICK);
                if let Ok(frame) = self.rx.recv_timeout(wait) {
                    self.on_frame(&frame, &mut out);
                }
            }
        }
        // Grace drain: let the tail of measured-window submissions
        // complete (their latency samples count), bounded by the
        // abandonment age.
        let drain_end_ns = self.shared.now().0 + self.abandon_after.as_nanos() as u64;
        while self.mux.in_flight() > 0
            && self.shared.now().0 < drain_end_ns
            && !self.shared.stopped()
        {
            match self.rx.recv_timeout(TICK) {
                Ok(frame) => self.on_frame(&frame, &mut out),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.shared.hub.deregister_client_group(self.base);
        out.mux = self.mux.stats();
        out
    }

    fn on_frame(&mut self, frame: &WireBytes, out: &mut DriverOut) {
        let Ok(env) = decode_envelope_shared(frame) else { return };
        let ProtocolMsg::Reply(reply) = env.msg else { return };
        if let Some(submitted_at) = self.mux.on_reply(&reply) {
            let lat_ns = self.shared.now().0.saturating_sub(submitted_at.0);
            self.live.completed.fetch_add(1, Ordering::Relaxed);
            self.live.latency.record(lat_ns);
            if submitted_at.0 >= self.warmup_end_ns && submitted_at.0 < self.measure_end_ns {
                out.measured_completed += 1;
                out.latencies.record(lat_ns);
            }
        }
    }
}
