//! # poe-fabric
//!
//! The multi-threaded, pipelined wall-clock replica runtime — the
//! deployment shape of paper §III ("PoE is implemented on top of a
//! multi-threaded pipelined architecture", evaluated over ResilientDB),
//! driving the very same sans-I/O [`PoeReplica`] automaton the
//! discrete-event simulator (`poe-sim`) replays deterministically.
//!
//! ## Paper §III stages → threads and channels
//!
//! The paper's replica pipeline (its Figure 6) has input/batching
//! threads feeding a consensus ("worker") stage, whose ordered output is
//! executed and answered to clients, with a checkpoint protocol running
//! alongside. Here, one replica = four OS threads over
//! [`poe_net::InprocHub`], connected by a **bounded** ingress→batching
//! queue (the backpressure point — overflow sheds client traffic,
//! retransmits first) and depth-gauged channels downstream (batching
//! defers cutting while the consensus queue is deep):
//!
//! | paper stage          | thread      | what it does                              |
//! |----------------------|-------------|-------------------------------------------|
//! | input                | `ingress`   | hub frames → pooled **zero-copy decode** ([`IngressDecoder`]), route client traffic vs consensus traffic |
//! | batching             | `batching`  | verify client signatures, warm digests, cut PROPOSE batches on size / `batch_cut_delay` triggers |
//! | consensus + execute  | `consensus` | owns the [`PoeReplica`] automaton and its [`TimerWheel`]; encode-**once** sends/broadcasts; speculative execution happens inside the automaton transition |
//! | execution/reply      | `egress`    | encodes and delivers the INFORM fan-out to clients |
//! | checkpointing        | (consensus) | checkpoint votes ride the consensus stage; batches retired by checkpoint **GC flow back to the ingress pool** (the recycle channel) |
//!
//! Speculative *execution* stays inside the automaton transition rather
//! than on its own thread: in PoE, executing at the proposal is part of
//! the deterministic replica state machine the protocol's safety
//! argument (and the simulator's replayable traces) depend on. What the
//! paper's execution stage delivers — results to clients — is exactly
//! what the egress stage pipelines off the consensus thread.
//!
//! ## The wire path
//!
//! Frames are refcounted [`WireBytes`] envelopes end to end: a
//! broadcast encodes once (warm [`ScratchPool`], no measuring pass) and
//! every recipient queue gets a clone of the *view*; ingress decodes
//! through [`decode_envelope_pooled`], so request payloads are views
//! into the receive frame all the way into the consensus slots, and with
//! a warm [`BatchPool`] a batch-carrying decode performs **zero**
//! allocations (`tests/alloc_ingress.rs` proves it with a counting
//! allocator). The pool is refilled where batches actually die:
//! checkpoint GC ([`PoeReplica::take_retired_batches`]).
//!
//! ## Observability
//!
//! Every replica carries a [`ReplicaTelemetry`] handle
//! (`poe-telemetry` underneath): the four stage threads bump lock-free
//! counters and record into log-linear bounded-error histograms on the
//! hot path (a counting-allocator test proves counter bumps and
//! histogram records stay **0-alloc**), and protocol transitions —
//! batch cuts, executions, view changes, checkpoint stabilization, the
//! FellBehind→repair→CaughtUp cycle, shed/deferral episodes, link
//! drops and reconnects — land in a fixed-capacity **flight recorder**
//! ring stamped with wall time. [`ReplicaTelemetry::render`] emits the
//! whole registry as Prometheus text (scrape it live over the
//! `poe-node` `metrics` stdio command), `timeline()` dumps the
//! recorder as a human-readable per-replica timeline (`dump-trace` on
//! `poe-node`; the fabric harness appends recorder tails to its stall
//! diagnostics), and the open-loop engine samples queue depths, shed
//! totals, and per-tick latency quantiles in-window into
//! [`openloop::TickSample`] rows — the time-series CSV the bench
//! writes next to its saturation curve.
//!
//! ## Shutdown
//!
//! Three phases, all bounded: clients exit when their workload budget is
//! spent; the harness polls per-replica probes until frontiers agree and
//! event counts stop advancing; then the stop flag flips and threads
//! drain out along the pipeline (ingress → batching → consensus →
//! egress), every loop being `recv_timeout`-shaped so joins cannot
//! deadlock.
//!
//! ```no_run
//! use poe_consensus::SupportMode;
//! use poe_fabric::{run_fabric, FabricConfig};
//!
//! let cfg = FabricConfig::new(4, SupportMode::Threshold);
//! let report = run_fabric(&cfg, std::time::Duration::from_secs(60)).unwrap();
//! assert!(report.converged(), "byte-identical history digests");
//! println!("{:.0} req/s, p50 {} µs", report.throughput_rps(), report.latency.p50_us);
//! ```
//!
//! [`PoeReplica`]: poe_consensus::PoeReplica
//! [`PoeReplica::take_retired_batches`]: poe_consensus::PoeReplica::take_retired_batches
//! [`WireBytes`]: poe_kernel::wire::WireBytes
//! [`ScratchPool`]: poe_kernel::codec::ScratchPool
//! [`BatchPool`]: poe_kernel::codec::BatchPool
//! [`decode_envelope_pooled`]: poe_kernel::codec::decode_envelope_pooled
//! [`IngressDecoder`]: crate::ingress::IngressDecoder
//! [`TimerWheel`]: crate::wheel::TimerWheel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ingress;
pub mod node;
pub mod openloop;
pub mod telemetry;
pub mod transport;
pub mod wheel;

mod admission;
mod client;
mod cpu;
mod queue;
mod runtime;
mod session;
mod stage;
#[cfg(test)]
mod storm;

pub use cluster::{
    run_fabric, FabricCluster, FabricConfig, FabricError, FabricReport, LatencySummary,
    ReplicaReport,
};
pub use ingress::{IngressDecoder, IngressStats};
pub use node::{NodeProgress, ReplicaNode};
pub use openloop::{
    drive_external, run_open_loop, run_open_loop_with, DriveReport, OpenLoopConfig, OpenLoopReport,
    TickSample,
};
pub use poe_net::LinkReport;
pub use session::SessionStats;
pub use stage::{BatchingStats, ConsensusStats, EgressStats, FabricTuning};
pub use telemetry::ReplicaTelemetry;
pub use transport::{
    cluster_instance_id, link_key_material, InprocTransport, TcpTransport, Transport,
};
pub use wheel::TimerWheel;
