//! The ingress stage's decode component.
//!
//! Frames arriving from the hub are zero-copy views ([`WireBytes`]); the
//! ingress stage decodes them through the codec's pooled shared mode
//! ([`decode_envelope_pooled`]), so request payloads stay views into the
//! receive frame and — once the [`BatchPool`] is warm — **decoding a
//! batch-carrying message allocates nothing**, batch containers
//! included. The pool is refilled with containers retired by checkpoint
//! GC (where decoded batches actually die), which the consensus stage
//! sends back via the recycle channel.
//!
//! [`IngressDecoder`] is deliberately a plain struct with no threads or
//! channels, so the allocation claim is testable in isolation (see
//! `tests/alloc_ingress.rs`).

use poe_kernel::codec::{decode_envelope_pooled, BatchPool};
use poe_kernel::messages::Envelope;
use poe_kernel::request::Batch;
use poe_kernel::wire::WireBytes;
use std::sync::Arc;

/// Decode-side counters of one replica's ingress stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngressStats {
    /// Frames decoded successfully.
    pub decoded: u64,
    /// Frames rejected by the codec (malformed, truncated, padded).
    pub decode_errors: u64,
    /// Decoded messages routed to the batching stage (client traffic).
    pub to_batching: u64,
    /// Decoded messages routed to the consensus stage.
    pub to_consensus: u64,
    /// Client retransmissions shed at the batch queue's high-water mark
    /// (deferred to the client's own retry — the cheapest load to drop).
    pub shed_retransmits: u64,
    /// Client requests shed because the batch queue was full (open-loop
    /// overload backpressure; consensus traffic is never shed).
    pub shed_full: u64,
    /// Frames dropped by link-authentication verification (invalid
    /// per-peer MAC/signature, or a consensus message claiming a client
    /// sender). Always 0 with link auth disabled.
    pub auth_failures: u64,
    /// On-CPU nanoseconds of the ingress thread (whole stage lifetime).
    pub cpu_ns: u64,
    /// Batch containers recycled back into the pool.
    pub recycled: u64,
    /// Pool reuse hits (batch container served without allocating).
    pub pool_hits: u64,
    /// Pool misses (container had to be allocated).
    pub pool_misses: u64,
}

/// Pooled zero-copy frame decoder (the pure part of the ingress stage).
#[derive(Debug)]
pub struct IngressDecoder {
    pool: BatchPool,
    decoded: u64,
    decode_errors: u64,
    recycled: u64,
}

impl Default for IngressDecoder {
    fn default() -> Self {
        IngressDecoder::new()
    }
}

impl IngressDecoder {
    /// A decoder with an empty (default-bounded) batch pool.
    pub fn new() -> IngressDecoder {
        IngressDecoder { pool: BatchPool::new(), decoded: 0, decode_errors: 0, recycled: 0 }
    }

    /// Decodes one envelope frame. Payloads are zero-copy views into
    /// `frame`; batch containers come from the pool. `None` on malformed
    /// frames (counted, then dropped — the sender retransmits).
    pub fn decode(&mut self, frame: &WireBytes) -> Option<Envelope> {
        match decode_envelope_pooled(frame, &mut self.pool) {
            Ok(env) => {
                self.decoded += 1;
                Some(env)
            }
            Err(_) => {
                self.decode_errors += 1;
                None
            }
        }
    }

    /// Returns a batch container retired by checkpoint GC to the pool
    /// (kept only if this is the last reference — a batch still held by
    /// a consensus slot is dropped from the pool's perspective).
    pub fn recycle(&mut self, batch: Arc<Batch>) {
        self.recycled += 1;
        self.pool.recycle(batch);
    }

    /// Point-in-time stats snapshot (routing counters are filled in by
    /// the stage loop, which owns the channels).
    pub fn stats(&self) -> IngressStats {
        let (pool_hits, pool_misses) = self.pool.stats();
        IngressStats {
            decoded: self.decoded,
            decode_errors: self.decode_errors,
            recycled: self.recycled,
            pool_hits,
            pool_misses,
            ..IngressStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::provider::AuthTag;
    use poe_kernel::codec::encode_envelope;
    use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
    use poe_kernel::messages::ProtocolMsg;
    use poe_kernel::request::ClientRequest;

    fn propose_frame() -> WireBytes {
        let batch = Batch::new(vec![ClientRequest::new(ClientId(0), 1, vec![7u8; 32], None)]);
        let env = Envelope {
            from: NodeId::Replica(ReplicaId(0)),
            auth: AuthTag::None,
            msg: ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(0), batch },
        };
        WireBytes::from(encode_envelope(&env))
    }

    #[test]
    fn decode_recycle_loop_reuses_containers() {
        let frame = propose_frame();
        let mut dec = IngressDecoder::new();
        for _ in 0..10 {
            let env = dec.decode(&frame).expect("well-formed frame");
            match env.msg {
                ProtocolMsg::PoePropose { batch, .. } => {
                    assert!(batch.requests[0].op.shares_buffer_with(&frame), "zero-copy payload");
                    dec.recycle(batch);
                }
                other => panic!("wrong variant {}", other.label()),
            }
        }
        let s = dec.stats();
        assert_eq!(s.decoded, 10);
        assert_eq!(s.recycled, 10);
        assert_eq!(s.pool_misses, 1, "only the cold first decode allocates a container");
        assert_eq!(s.pool_hits, 9);
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let mut dec = IngressDecoder::new();
        assert!(dec.decode(&WireBytes::from(vec![0xFF, 1, 2])).is_none());
        // A padded well-formed frame must be rejected too (strict decode).
        let mut bytes = propose_frame().as_slice().to_vec();
        bytes.push(0);
        assert!(dec.decode(&WireBytes::from(bytes)).is_none());
        assert_eq!(dec.stats().decode_errors, 2);
    }
}
