//! A single replica as a standalone socket-substrate node — the library
//! half of the `poe-node` binary. One process = one [`ReplicaNode`]:
//! bind a [`TcpHub`] on a listen address, mesh it with the peer
//! addresses, run the four stage threads, and report the final state
//! (digests, stage counters, per-link supervision counters) on stop.
//!
//! Unlike [`crate::FabricCluster`], there is no cross-process quiesce
//! oracle: a node can only watch its *own* progress. The harness
//! protocol is therefore: stop the load, wait for every node's probe to
//! go stable ([`ReplicaNode::wait_quiesce`]), then stop and compare the
//! reported `history_digest`s — byte-identical digests are the
//! convergence criterion, exactly as in-process.

use crate::cluster::{report_replica, FabricConfig, ReplicaReport};
use crate::runtime::{ClusterCtl, ClusterShared, LinkAuth};
use crate::stage::{ReplicaHandle, ReplicaSpawn};
use crate::telemetry::ReplicaTelemetry;
use crate::transport::{cluster_instance_id, link_key_material};
use poe_crypto::KeyMaterial;
use poe_kernel::ids::ReplicaId;
use poe_net::{Hub, LinkRecorder, TcpConfig, TcpHub};
use poe_telemetry::TimeBase;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Public mirror of the replica progress probe (view / frontiers /
/// event count), for harnesses that poll for local quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeProgress {
    /// Current view number.
    pub view: u64,
    /// Contiguous execution frontier.
    pub exec: u64,
    /// Commit frontier.
    pub commit: u64,
    /// Automaton events processed (monotonic; stability indicator).
    pub events: u64,
}

/// One running replica over its own socket hub.
pub struct ReplicaNode {
    shared: Arc<ClusterShared<TcpHub>>,
    handle: ReplicaHandle,
    telemetry: Arc<ReplicaTelemetry>,
}

impl ReplicaNode {
    /// Binds this replica's hub on `listen` and spawns its four stage
    /// threads. The node is passive until [`ReplicaNode::connect`]
    /// meshes it with its peers (inbound connections are accepted from
    /// the start). `cfg.link_auth` keys both the peer handshakes and
    /// the per-frame tags — every process derives identical key
    /// material from the shared cluster seed.
    pub fn bind(
        cfg: &FabricConfig,
        id: ReplicaId,
        listen: SocketAddr,
    ) -> std::io::Result<ReplicaNode> {
        let cluster = &cfg.cluster;
        let km = KeyMaterial::generate(
            cluster.n,
            cfg.n_clients,
            cluster.nf(),
            cluster.crypto_mode,
            cluster.cert_scheme,
            cluster.seed,
        );
        let (link_auth, hub_auth) = match cfg.link_auth {
            Some(mode) => {
                let link_km = link_key_material(cluster, mode);
                let provider = link_km.replica(id.index());
                (LinkAuth::new(provider.clone()), Some(provider))
            }
            None => (LinkAuth::disabled(), None),
        };
        let mut tcp = TcpConfig::replica(id.0, cluster.n, cluster_instance_id(cluster));
        if let Some(provider) = hub_auth {
            tcp = tcp.with_auth(provider);
        }
        let telemetry = ReplicaTelemetry::new(id.0, TimeBase::Wall);
        let ctl = ClusterCtl::new();
        // Link supervision events share the stage threads' clock, so
        // the dump interleaves protocol and transport events coherently.
        let clock_ctl = ctl.clone();
        tcp = tcp.with_recorder(LinkRecorder::new(
            telemetry.recorder().clone(),
            Arc::new(move || clock_ctl.now().0),
        ));
        let hub = TcpHub::bind(tcp, listen)?;
        let shared = ClusterShared::with_ctl(hub, ctl);
        let handle = ReplicaHandle::spawn(ReplicaSpawn {
            shared: shared.clone(),
            cluster: cluster.clone(),
            support: cfg.support,
            km,
            id,
            tuning: cfg.tuning.clone(),
            link_auth,
            telemetry: telemetry.clone(),
        });
        Ok(ReplicaNode { shared, handle, telemetry })
    }

    /// The bound listen address (port-0 binds resolve here).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.shared.hub.local_addr()
    }

    /// Meshes this node with the cluster: one supervised outbound link
    /// per peer (own id skipped).
    pub fn connect(&self, peers: &[(u32, SocketAddr)]) {
        self.shared.hub.set_peers(peers);
    }

    /// Severs every live connection of this node's hub (supervision
    /// drill: writers redial with backoff, peers reconnect).
    pub fn drop_links(&self) {
        self.shared.hub.drop_links();
    }

    /// This node's telemetry (metrics registry + flight recorder).
    pub fn telemetry(&self) -> &Arc<ReplicaTelemetry> {
        &self.telemetry
    }

    /// Prometheus text exposition of this node's metrics, refreshed at
    /// call time (the `metrics` stdio command of `poe-node`).
    pub fn metrics_text(&self) -> String {
        self.telemetry.render()
    }

    /// Human-readable protocol timeline from this node's flight
    /// recorder (the `dump-trace` stdio command of `poe-node`).
    pub fn trace_dump(&self) -> String {
        self.telemetry.timeline()
    }

    /// Point-in-time progress snapshot.
    pub fn progress(&self) -> NodeProgress {
        let s = self.handle.probe.snapshot();
        NodeProgress { view: s.view, exec: s.exec, commit: s.commit, events: s.events }
    }

    /// Waits until the local event counter stops advancing for
    /// `stable_for` (polling every 25 ms), or `deadline` expires.
    /// Returns whether stability was reached.
    pub fn wait_quiesce(&self, stable_for: Duration, deadline: Duration) -> bool {
        let t0 = Instant::now();
        let mut last = self.progress();
        let mut stable_since = Instant::now();
        loop {
            std::thread::sleep(Duration::from_millis(25));
            let now = self.progress();
            if now != last {
                last = now;
                stable_since = Instant::now();
            } else if stable_since.elapsed() >= stable_for {
                return true;
            }
            if t0.elapsed() > deadline {
                return false;
            }
        }
    }

    /// Stops the stage threads, joins them, tears the hub down, and
    /// reports final state — including per-link supervision counters.
    pub fn stop(self) -> ReplicaReport {
        self.shared.request_stop();
        let join = self.handle.join();
        let links = self.shared.hub.link_reports();
        let report = report_replica(join, links);
        self.shared.hub.shutdown();
        report
    }
}
