//! Parallel client-signature admission for the batching stage.
//!
//! On a signed cluster the primary's batching thread is the admission
//! bottleneck: every client request costs one Ed25519 verify before it
//! may enter a batch (Fig. 3 Line 14). Batched verification already
//! amortizes the curve arithmetic (`verify_batch_from`); this module
//! additionally *shards* each admission chunk across a small worker
//! pool, so the verify throughput scales with cores instead of pinning
//! one stage thread.
//!
//! The pool is deliberately scoped to the batching stage: workers are
//! spawned by `batching_loop`, fed scatter/gather style (the batching
//! thread always verifies one shard itself, so a pool of zero workers
//! degrades to plain batched verification with no cross-thread hop),
//! and joined when the stage winds down — they never appear in the
//! cluster's stage-thread accounting.

use crate::cpu::thread_cpu_ns;
use crossbeam::channel::{unbounded, Receiver, Sender};
use poe_crypto::CryptoProvider;
use poe_kernel::ids::NodeId;
use poe_kernel::request::ClientRequest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shard of requests scattered to one worker: `(chunk id, requests)`.
type Job = (u64, Vec<ClientRequest>);
/// A worker's verdicts for one shard: `(chunk id, per-request valid)`.
type Verdicts = (u64, Vec<bool>);

/// How long a gather waits for a worker before failing its shard
/// closed (workers only go missing if one panicked).
const GATHER_TIMEOUT: Duration = Duration::from_secs(5);

struct Worker {
    job_tx: Sender<Job>,
    handle: JoinHandle<()>,
}

/// A batching-stage verify pool of `workers` helper threads (plus the
/// calling thread, which always verifies the first shard inline).
pub(crate) struct AdmissionPool {
    workers: Vec<Worker>,
    done_rx: Receiver<Verdicts>,
    crypto: CryptoProvider,
    n: usize,
    /// Monotone shard ids, so a verdict straggling past a gather
    /// timeout can never be mistaken for a later call's shard.
    next_chunk: u64,
    /// Summed on-CPU ns of exited workers (replica CPU, reported so
    /// req/s/core cannot hide admission work in unaccounted threads).
    worker_cpu_ns: Arc<AtomicU64>,
}

/// Default worker count: leave two cores for the rest of the pipeline,
/// never take more than four. On small hosts (including a 1-core CI
/// runner) this is zero and admission stays inline — the batched
/// verify is still the fast path; the pool only pays for threads where
/// there are cores to back them.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(0, |p| p.get().saturating_sub(2).min(4))
}

impl AdmissionPool {
    /// Spawns `workers` verify threads for replica `label` (0 workers
    /// is valid and spawns none).
    pub fn new(crypto: CryptoProvider, n: usize, workers: usize, label: u32) -> AdmissionPool {
        let (done_tx, done_rx) = unbounded::<Verdicts>();
        let worker_cpu_ns = Arc::new(AtomicU64::new(0));
        let workers = (0..workers)
            .map(|w| {
                let (job_tx, job_rx) = unbounded::<Job>();
                let crypto = crypto.clone();
                let done_tx = done_tx.clone();
                let cpu = worker_cpu_ns.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("r{label}-admit{w}"))
                    .spawn(move || {
                        while let Ok((chunk, reqs)) = job_rx.recv() {
                            let verdicts = verify_shard(&crypto, n, &reqs);
                            if done_tx.send((chunk, verdicts)).is_err() {
                                break;
                            }
                        }
                        cpu.fetch_add(thread_cpu_ns(), Ordering::Relaxed);
                    })
                    .expect("spawn admission worker");
                Worker { job_tx, handle }
            })
            .collect();
        AdmissionPool { workers, done_rx, crypto, n, next_chunk: 0, worker_cpu_ns }
    }

    /// Verifies `reqs` and returns one verdict per request, in order.
    /// Shards across the workers; the calling thread verifies shard 0.
    pub fn verify(&mut self, reqs: &[ClientRequest]) -> Vec<bool> {
        let shards = self.workers.len() + 1;
        // Tiny chunks are not worth the scatter hop.
        if shards == 1 || reqs.len() < shards * 4 {
            return verify_shard(&self.crypto, self.n, reqs);
        }
        let per = reqs.len().div_ceil(shards);
        // Scatter: shard i+1 to worker i (chunk counts never exceed the
        // worker count because `per` divides the tail into ≤ shards−1).
        let mut pending: HashMap<u64, usize> = HashMap::new();
        let mut offset = per;
        for (w, shard) in reqs[per..].chunks(per).enumerate() {
            let chunk = self.next_chunk;
            self.next_chunk += 1;
            // Requests are refcounted views; the clone is cheap.
            let sent =
                self.workers[w % self.workers.len()].job_tx.send((chunk, shard.to_vec())).is_ok();
            if sent {
                pending.insert(chunk, offset);
            }
            offset += shard.len();
        }
        // Verify the head shard on this thread, then gather. A shard
        // that never comes back fails closed (all-false) — the client
        // retransmission path recovers the requests.
        let mut verdicts = vec![false; reqs.len()];
        verdicts[..per].copy_from_slice(&verify_shard(&self.crypto, self.n, &reqs[..per]));
        let deadline = Instant::now() + GATHER_TIMEOUT;
        while !pending.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.done_rx.recv_timeout(left) {
                Ok((chunk, shard)) => {
                    // Unknown chunk = straggler from a timed-out gather.
                    if let Some(off) = pending.remove(&chunk) {
                        verdicts[off..off + shard.len()].copy_from_slice(&shard);
                    }
                }
                Err(_) => break,
            }
        }
        verdicts
    }

    /// Joins the workers and returns their summed on-CPU nanoseconds.
    pub fn shutdown(self) -> u64 {
        let AdmissionPool { workers, done_rx, worker_cpu_ns, .. } = self;
        let handles: Vec<JoinHandle<()>> = workers
            .into_iter()
            .map(|w| {
                // Disconnect the job channel so the worker falls out of
                // its recv loop.
                drop(w.job_tx);
                w.handle
            })
            .collect();
        drop(done_rx);
        for h in handles {
            let _ = h.join();
        }
        worker_cpu_ns.load(Ordering::Relaxed)
    }
}

/// Batched verification of one shard, with the serial fallback that
/// identifies offenders when the all-or-nothing batch check fails.
fn verify_shard(crypto: &CryptoProvider, n: usize, reqs: &[ClientRequest]) -> Vec<bool> {
    let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(reqs.len());
    for req in reqs {
        let mut buf = Vec::with_capacity(req.op.len() + 16);
        ClientRequest::write_signing_bytes(&mut buf, req.client, req.req_id, &req.op);
        bufs.push(buf);
    }
    let mut items = Vec::with_capacity(reqs.len());
    let mut verdicts = vec![false; reqs.len()];
    for (i, req) in reqs.iter().enumerate() {
        if let Some(sig) = &req.signature {
            items.push((i, NodeId::Client(req.client).global_index(n), sig));
        }
    }
    let triples: Vec<_> =
        items.iter().map(|(i, from, sig)| (*from, bufs[*i].as_slice(), **sig)).collect();
    if crypto.verify_batch_from(&triples) {
        for (i, _, _) in items {
            verdicts[i] = true;
        }
    } else {
        for (i, from, sig) in items {
            verdicts[i] = crypto.verify_from(from, &bufs[i], sig);
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
    use poe_kernel::ids::ClientId;

    fn setup(n_clients: usize) -> (Arc<KeyMaterial>, Vec<ClientRequest>) {
        let km =
            KeyMaterial::generate(4, n_clients, 3, CryptoMode::Ed25519, CertScheme::Simulated, 1);
        let reqs: Vec<ClientRequest> = (0..n_clients)
            .map(|c| {
                let signer = km.client(c);
                let op = vec![c as u8; 24];
                let bytes = ClientRequest::signing_bytes(ClientId(c as u32), c as u64, &op);
                ClientRequest::new(ClientId(c as u32), c as u64, op, Some(signer.sign(&bytes)))
            })
            .collect();
        (km, reqs)
    }

    #[test]
    fn pool_matches_serial_verification() {
        let (km, mut reqs) = setup(24);
        // Corrupt one request's op (signature no longer matches) and
        // strip another's signature entirely.
        reqs[5] =
            ClientRequest::new(reqs[5].client, reqs[5].req_id, vec![9; 24], reqs[5].signature);
        reqs[11] = ClientRequest::new(reqs[11].client, reqs[11].req_id, vec![1; 24], None);
        let expected: Vec<bool> = {
            let crypto = km.replica(0);
            reqs.iter()
                .map(|r| match &r.signature {
                    Some(sig) => {
                        let bytes = ClientRequest::signing_bytes(r.client, r.req_id, &r.op);
                        crypto.verify_from(NodeId::Client(r.client).global_index(4), &bytes, sig)
                    }
                    None => false,
                })
                .collect()
        };
        assert!(!expected[5] && !expected[11] && expected[0]);
        for workers in [0, 2] {
            let mut pool = AdmissionPool::new(km.replica(0), 4, workers, 0);
            assert_eq!(pool.verify(&reqs), expected, "workers={workers}");
            pool.shutdown();
        }
    }

    #[test]
    fn empty_and_tiny_chunks() {
        let (km, reqs) = setup(3);
        let mut pool = AdmissionPool::new(km.replica(0), 4, 2, 0);
        assert!(pool.verify(&[]).is_empty());
        assert_eq!(pool.verify(&reqs[..1]), vec![true]);
        pool.shutdown();
    }

    #[test]
    fn shutdown_reports_worker_cpu() {
        let (km, reqs) = setup(40);
        let mut pool = AdmissionPool::new(km.replica(0), 4, 2, 0);
        for _ in 0..4 {
            assert!(pool.verify(&reqs).iter().all(|v| *v));
        }
        let cpu = pool.shutdown();
        // Workers did real Ed25519 verification; if the platform has
        // CPU accounting at all, some of it must be attributed.
        if thread_cpu_ns() > 0 {
            assert!(cpu > 0, "worker CPU must be accounted");
        }
    }
}
