//! Wall-clock timers for stage threads.
//!
//! Automatons request timers through [`Action::SetTimer`] and expect the
//! generation-based [`TimerKind`] contract the simulator implements: a
//! timer that was re-armed or cancelled after being scheduled must not
//! fire. [`TimerWheel`] maps that contract onto the wall clock for one
//! stage thread — a [`TimerTable`] issues generation tokens and a
//! min-heap orders deadlines; stale heap entries (older generations,
//! cancelled kinds) are discarded lazily when they surface.
//!
//! [`Action::SetTimer`]: poe_kernel::automaton::Action::SetTimer

use poe_kernel::time::Time;
use poe_kernel::timer::{TimerKind, TimerTable};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A single-threaded wall-clock timer queue honoring the generation
/// contract of [`TimerTable`].
#[derive(Debug, Default)]
pub struct TimerWheel {
    table: TimerTable,
    heap: BinaryHeap<Reverse<(Time, u64, TimerKind)>>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Arms (or re-arms) `kind` to fire at `at`. Any previously armed
    /// generation of the same kind becomes stale.
    pub fn arm(&mut self, kind: TimerKind, at: Time) {
        let gen = self.table.arm(kind);
        self.heap.push(Reverse((at, gen, kind)));
    }

    /// Cancels `kind`; its heap entries are dropped lazily.
    pub fn cancel(&mut self, kind: &TimerKind) {
        self.table.cancel(kind);
    }

    /// The earliest deadline that could still fire, pruning stale heap
    /// heads so a cancelled timer cannot cause a spurious early wake.
    pub fn next_deadline(&mut self) -> Option<Time> {
        while let Some(Reverse((at, gen, kind))) = self.heap.peek() {
            if self.table.is_current(kind, *gen) {
                return Some(*at);
            }
            self.heap.pop();
        }
        None
    }

    /// How long a stage loop may block before the next current deadline
    /// is due: `deadline − now`, capped at `tick` (and `tick` when no
    /// timer is armed). Shared by every fabric loop so the
    /// wait-computation arithmetic exists exactly once.
    pub fn wait_budget(&mut self, now: Time, tick: std::time::Duration) -> std::time::Duration {
        match self.next_deadline() {
            Some(at) => std::time::Duration::from_nanos(at.0.saturating_sub(now.0)).min(tick),
            None => tick,
        }
    }

    /// Pops the next timer that is both due at `now` and still current
    /// (consuming its generation). `None` when nothing else is due.
    pub fn pop_expired(&mut self, now: Time) -> Option<TimerKind> {
        while let Some(Reverse((at, _, _))) = self.heap.peek() {
            if *at > now {
                return None;
            }
            let Reverse((_, gen, kind)) = self.heap.pop().expect("peeked");
            if self.table.fire(&kind, gen) {
                return Some(kind);
            }
        }
        None
    }

    /// Number of armed (current) timers.
    pub fn armed(&self) -> usize {
        self.table.armed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_kernel::ids::{SeqNum, View};

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.arm(TimerKind::SlotProgress(SeqNum(2)), Time(20));
        w.arm(TimerKind::SlotProgress(SeqNum(1)), Time(10));
        assert_eq!(w.next_deadline(), Some(Time(10)));
        assert_eq!(w.pop_expired(Time(5)), None);
        assert_eq!(w.pop_expired(Time(25)), Some(TimerKind::SlotProgress(SeqNum(1))));
        assert_eq!(w.pop_expired(Time(25)), Some(TimerKind::SlotProgress(SeqNum(2))));
        assert_eq!(w.pop_expired(Time(25)), None);
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn rearm_supersedes_older_generation() {
        let mut w = TimerWheel::new();
        w.arm(TimerKind::BatchCut, Time(10));
        w.arm(TimerKind::BatchCut, Time(30));
        // The stale generation at t=10 must neither fire nor surface as
        // a deadline.
        assert_eq!(w.next_deadline(), Some(Time(30)));
        assert_eq!(w.pop_expired(Time(20)), None);
        assert_eq!(w.pop_expired(Time(40)), Some(TimerKind::BatchCut));
        assert_eq!(w.pop_expired(Time(40)), None);
    }

    #[test]
    fn cancel_prevents_fire_and_prunes_deadline() {
        let mut w = TimerWheel::new();
        w.arm(TimerKind::ViewChange(View(1)), Time(10));
        w.arm(TimerKind::ClientRetry(7), Time(50));
        w.cancel(&TimerKind::ViewChange(View(1)));
        assert_eq!(w.next_deadline(), Some(Time(50)));
        assert_eq!(w.pop_expired(Time(100)), Some(TimerKind::ClientRetry(7)));
        assert_eq!(w.pop_expired(Time(100)), None);
    }

    #[test]
    fn kinds_are_independent() {
        let mut w = TimerWheel::new();
        w.arm(TimerKind::ClientRetry(1), Time(10));
        w.arm(TimerKind::ClientRetry(2), Time(10));
        assert_eq!(w.armed(), 2);
        assert!(w.pop_expired(Time(10)).is_some());
        assert!(w.pop_expired(Time(10)).is_some());
        assert_eq!(w.armed(), 0);
    }
}
