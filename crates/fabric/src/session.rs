//! Per-client session table: exactly-once replies under retry storms.
//!
//! An open-loop engine multiplexing 10⁵–10⁶ sessions retries by
//! *broadcast* (the kernel's `RequestBroadcast` fallback), so one slow
//! batch can turn into n copies of every pending request arriving at
//! every replica. Without dedup, each copy costs an Ed25519 verify and
//! a consensus-queue slot — the retry storm itself saturates the
//! pipeline and the cluster collapses exactly when it is busiest.
//!
//! The table gives each replica the classic SMR session discipline
//! (PBFT §4.1 keeps "the last reply to each client"; PoE inherits it):
//!
//! * a duplicate of a request still *in flight* is dropped at the
//!   batching stage, before signature verification — the reply it is
//!   waiting for is already on its way;
//! * a duplicate of the *last replied* request is answered straight
//!   from a cache of the encoded INFORM frame (a refcount bump, no
//!   re-encode, no consensus work) — this is what makes the reply
//!   exactly-once-per-execution rather than once-per-retransmission;
//! * anything older is stale and dropped.
//!
//! Admission is two-phase on the primary: [`SessionTable::classify`]
//! decides, then [`SessionTable::note_enqueued`] advances the in-flight
//! watermark only *after* the signature verified — otherwise a forged
//! request for `(client, req_id)` could mark the session busy and
//! dup-suppress the client's genuine request behind it.
//!
//! Memory is bounded on both axes: cached reply *frames* live under a
//! byte budget with FIFO eviction, and eviction only ever drops frames
//! — which are by construction at-or-below the session's last-replied
//! request — never the per-session watermarks, so exactly-once
//! admission survives eviction (a retry of an evicted reply is dropped
//! as stale rather than re-executed; the client's remaining `n − 1`
//! replicas still hold its reply in the common case).
//!
//! Safety valve: a duplicate in flight longer than the grace window is
//! passed through to the automaton anyway. The automaton's own dedup
//! keeps it safe, and the passthrough keeps the failure-detection path
//! alive — retransmissions of a request a faulty primary sat on must
//! eventually reach the protocol layer.

use poe_kernel::ids::ClientId;
use poe_kernel::wire::WireBytes;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// What the batching stage should do with an arriving client request.
#[derive(Debug)]
pub(crate) enum Admit {
    /// First sighting (or grace-expired retry): verify and batch it.
    Fresh,
    /// A copy of a request currently in the pipeline: drop it.
    DuplicateInFlight,
    /// A retry of the last replied request: resend this cached frame.
    ReplyCached(WireBytes),
    /// Below the session's reply watermark (or its cache was evicted):
    /// drop it.
    Stale,
}

/// Counters of one replica's session table.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Distinct client sessions tracked.
    pub sessions: u64,
    /// Duplicates dropped while the original was still in flight.
    pub dup_in_flight: u64,
    /// Retries answered from the encoded-reply cache.
    pub replayed_from_cache: u64,
    /// Grace-expired duplicates passed through to the automaton.
    pub grace_passthrough: u64,
    /// Requests dropped below the reply watermark.
    pub stale_dropped: u64,
    /// Cached reply frames evicted by the byte budget.
    pub evicted_replies: u64,
    /// Peak bytes held by cached reply frames.
    pub cached_bytes_peak: usize,
}

#[derive(Default)]
struct SessionEntry {
    /// Highest request id admitted into the pipeline.
    last_enqueued: Option<u64>,
    /// When it was admitted (cluster time, ns).
    enqueued_at: u64,
    /// Highest request id this replica has replied to.
    last_replied: Option<u64>,
    /// Encoded reply frame for `last_replied` (until evicted).
    cached: Option<(u64, WireBytes)>,
}

/// One replica's session table, shared (behind a mutex) between the
/// batching stage (admission) and the egress stage (reply recording).
pub(crate) struct SessionTable {
    sessions: HashMap<ClientId, SessionEntry>,
    /// Eviction order of cached frames; entries whose frame was already
    /// replaced are skipped lazily on pop.
    fifo: VecDeque<(ClientId, u64)>,
    cached_bytes: usize,
    budget_bytes: usize,
    grace_ns: u64,
    stats: SessionStats,
}

impl SessionTable {
    /// A table caching at most `budget_bytes` of encoded reply frames,
    /// passing duplicates through after `grace` in flight.
    pub fn new(budget_bytes: usize, grace: Duration) -> SessionTable {
        SessionTable {
            sessions: HashMap::new(),
            fifo: VecDeque::new(),
            cached_bytes: 0,
            budget_bytes,
            grace_ns: grace.as_nanos() as u64,
            stats: SessionStats::default(),
        }
    }

    /// Classifies one arriving request on the primary path. Watermarks
    /// are untouched — the caller reports verified admissions via
    /// [`SessionTable::note_enqueued`]. `now_ns` is cluster time.
    pub fn classify(&mut self, client: ClientId, req_id: u64, now_ns: u64) -> Admit {
        let Some(entry) = self.sessions.get(&client) else {
            return Admit::Fresh;
        };
        match entry.last_enqueued {
            None => return Admit::Fresh,
            Some(last) if req_id > last => return Admit::Fresh,
            Some(last) if req_id == last && entry.last_replied != Some(req_id) => {
                if now_ns.saturating_sub(entry.enqueued_at) > self.grace_ns {
                    // Let the automaton see it — its own dedup is safe,
                    // and progress timers need retransmissions to stay
                    // live behind a faulty primary.
                    self.stats.grace_passthrough += 1;
                    return Admit::Fresh;
                }
                self.stats.dup_in_flight += 1;
                return Admit::DuplicateInFlight;
            }
            Some(_) => {}
        }
        if let Some((cached_id, frame)) = &entry.cached {
            if *cached_id == req_id {
                self.stats.replayed_from_cache += 1;
                return Admit::ReplyCached(frame.clone());
            }
        }
        self.stats.stale_dropped += 1;
        Admit::Stale
    }

    /// Marks `(client, req_id)` in flight — called once the request's
    /// signature verified and it entered the batcher.
    pub fn note_enqueued(&mut self, client: ClientId, req_id: u64, now_ns: u64) {
        let entry = self.sessions.entry(client).or_default();
        if entry.last_enqueued.is_none_or(|last| req_id >= last) {
            entry.last_enqueued = Some(req_id);
            entry.enqueued_at = now_ns;
        }
    }

    /// The non-primary path: serves a cached reply for an exact retry
    /// of the last replied request, without touching any watermark
    /// (relays must keep flowing so the automaton's failure-detection
    /// timers see retransmissions).
    pub fn replay(&mut self, client: ClientId, req_id: u64) -> Option<WireBytes> {
        let entry = self.sessions.get(&client)?;
        let (cached_id, frame) = entry.cached.as_ref()?;
        if *cached_id != req_id {
            return None;
        }
        self.stats.replayed_from_cache += 1;
        Some(frame.clone())
    }

    /// Records the encoded reply frame for `(client, req_id)` — called
    /// by egress right after the INFORM is encoded. Advances the reply
    /// watermark and replaces the session's cached frame, then evicts
    /// oldest frames until the byte budget holds.
    pub fn record_reply(&mut self, client: ClientId, req_id: u64, frame: &WireBytes) {
        let entry = self.sessions.entry(client).or_default();
        if entry.last_replied.is_some_and(|r| req_id < r) {
            return; // Late duplicate of an older execution.
        }
        entry.last_replied = Some(req_id);
        if let Some((_, old)) = entry.cached.take() {
            self.cached_bytes -= old.len();
        }
        entry.cached = Some((req_id, frame.clone()));
        self.cached_bytes += frame.len();
        self.fifo.push_back((client, req_id));
        self.stats.cached_bytes_peak = self.stats.cached_bytes_peak.max(self.cached_bytes);
        while self.cached_bytes > self.budget_bytes {
            let Some((c, id)) = self.fifo.pop_front() else { break };
            let Some(e) = self.sessions.get_mut(&c) else { continue };
            // Skip lazily if this fifo entry's frame was already
            // replaced by a newer reply for the same session.
            if let Some((cached_id, _)) = &e.cached {
                if *cached_id == id {
                    let (_, frame) = e.cached.take().expect("checked");
                    self.cached_bytes -= frame.len();
                    self.stats.evicted_replies += 1;
                }
            }
        }
    }

    /// Counters so far (sessions gauge refreshed on read).
    pub fn stats(&self) -> SessionStats {
        let mut s = self.stats;
        s.sessions = self.sessions.len() as u64;
        s
    }

    /// Bytes currently held by cached reply frames.
    #[cfg(test)]
    pub fn cached_bytes(&self) -> usize {
        self.cached_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRACE: Duration = Duration::from_secs(1);
    const GRACE_NS: u64 = 1_000_000_000;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }

    fn frame(n: usize) -> WireBytes {
        WireBytes::from(vec![0xAB; n])
    }

    /// classify-then-note, the verified-admission path.
    fn admit(t: &mut SessionTable, client: ClientId, req_id: u64, now: u64) -> Admit {
        let verdict = t.classify(client, req_id, now);
        if matches!(verdict, Admit::Fresh) {
            t.note_enqueued(client, req_id, now);
        }
        verdict
    }

    #[test]
    fn first_sighting_is_fresh_even_at_req_id_zero() {
        let mut t = SessionTable::new(1024, GRACE);
        assert!(matches!(admit(&mut t, c(0), 0, 10), Admit::Fresh));
        assert!(matches!(admit(&mut t, c(1), 0, 10), Admit::Fresh));
        // And a retransmission of that id 0 is then a duplicate.
        assert!(matches!(admit(&mut t, c(0), 0, 20), Admit::DuplicateInFlight));
    }

    #[test]
    fn duplicate_in_flight_is_dropped_then_passes_after_grace() {
        let mut t = SessionTable::new(1024, GRACE);
        assert!(matches!(admit(&mut t, c(0), 5, 100), Admit::Fresh));
        assert!(matches!(admit(&mut t, c(0), 5, 200), Admit::DuplicateInFlight));
        assert!(matches!(admit(&mut t, c(0), 5, 100 + GRACE_NS + 1), Admit::Fresh));
        assert_eq!(t.stats().grace_passthrough, 1);
        // The passthrough re-stamps the clock: the next duplicate is
        // swallowed again.
        assert!(matches!(admit(&mut t, c(0), 5, 100 + GRACE_NS + 2), Admit::DuplicateInFlight));
    }

    #[test]
    fn unverified_classify_does_not_mark_in_flight() {
        let mut t = SessionTable::new(1024, GRACE);
        // A forged request is classified but never noted (its signature
        // failed) — the genuine request must still be Fresh.
        assert!(matches!(t.classify(c(0), 5, 100), Admit::Fresh));
        assert!(matches!(t.classify(c(0), 5, 101), Admit::Fresh));
    }

    #[test]
    fn retry_after_reply_is_served_from_cache() {
        let mut t = SessionTable::new(1024, GRACE);
        admit(&mut t, c(0), 7, 0);
        t.record_reply(c(0), 7, &frame(32));
        match admit(&mut t, c(0), 7, 10) {
            Admit::ReplyCached(f) => assert_eq!(f.len(), 32),
            other => panic!("expected cached reply, got {other:?}"),
        }
        assert_eq!(t.stats().replayed_from_cache, 1);
        // The next request id is fresh as usual.
        assert!(matches!(admit(&mut t, c(0), 8, 20), Admit::Fresh));
    }

    #[test]
    fn retry_after_eviction_is_stale_not_reexecuted() {
        let mut t = SessionTable::new(64, GRACE);
        admit(&mut t, c(0), 1, 0);
        t.record_reply(c(0), 1, &frame(48));
        // The second session's reply blows the budget; c0's frame (the
        // FIFO head) is evicted.
        admit(&mut t, c(1), 1, 0);
        t.record_reply(c(1), 1, &frame(48));
        assert_eq!(t.stats().evicted_replies, 1);
        assert!(t.cached_bytes() <= 64);
        // Exactly-once must hold: the retry is dropped, not re-admitted.
        assert!(matches!(admit(&mut t, c(0), 1, 10), Admit::Stale));
        assert_eq!(t.stats().stale_dropped, 1);
    }

    #[test]
    fn eviction_never_drops_the_watermark() {
        let mut t = SessionTable::new(16, GRACE);
        for id in 1..=5u64 {
            admit(&mut t, c(0), id, id);
            t.record_reply(c(0), id, &frame(32)); // Always over budget.
        }
        // All frames evicted as they went; the watermark still advanced.
        assert!(matches!(admit(&mut t, c(0), 3, 100), Admit::Stale));
        assert!(matches!(admit(&mut t, c(0), 6, 100), Admit::Fresh));
    }

    #[test]
    fn newer_reply_replaces_the_cached_frame() {
        let mut t = SessionTable::new(1024, GRACE);
        admit(&mut t, c(0), 1, 0);
        t.record_reply(c(0), 1, &frame(100));
        admit(&mut t, c(0), 2, 1);
        t.record_reply(c(0), 2, &frame(60));
        assert_eq!(t.cached_bytes(), 60, "old frame released");
        assert!(matches!(admit(&mut t, c(0), 1, 2), Admit::Stale));
        assert!(matches!(admit(&mut t, c(0), 2, 2), Admit::ReplyCached(_)));
    }

    #[test]
    fn out_of_order_reply_does_not_regress_the_watermark() {
        let mut t = SessionTable::new(1024, GRACE);
        t.record_reply(c(0), 9, &frame(10));
        t.record_reply(c(0), 4, &frame(10)); // Late, ignored.
        assert!(t.replay(c(0), 9).is_some());
        assert!(t.replay(c(0), 4).is_none());
    }

    #[test]
    fn replay_serves_only_the_exact_cached_request() {
        let mut t = SessionTable::new(1024, GRACE);
        assert!(t.replay(c(0), 1).is_none(), "unknown session");
        t.record_reply(c(0), 1, &frame(8));
        assert!(t.replay(c(0), 1).is_some());
        assert!(t.replay(c(0), 2).is_none());
        assert_eq!(t.stats().replayed_from_cache, 1);
    }

    #[test]
    fn stats_count_sessions() {
        let mut t = SessionTable::new(1024, GRACE);
        admit(&mut t, c(0), 1, 0);
        admit(&mut t, c(1), 1, 0);
        t.record_reply(c(2), 1, &frame(4));
        assert_eq!(t.stats().sessions, 3);
    }
}
