//! End-to-end wall-clock cluster tests: determinism (byte-identical
//! committed-history digests across replicas in both SUPPORT modes) and
//! lifecycle (shutdown joins every stage thread without deadlock).
//!
//! Every run executes inside a watchdog thread with a hard deadline, so
//! a wedged pipeline fails the test instead of hanging the suite.

use poe_consensus::SupportMode;
use poe_fabric::{FabricCluster, FabricConfig, FabricReport};
use std::time::Duration;

/// Generous bound for CI machines; healthy runs finish in well under a
/// second of wall clock.
const DEADLINE: Duration = Duration::from_secs(120);

/// Runs a full launch → completion → shutdown cycle under a watchdog.
fn run_guarded(cfg: FabricConfig) -> FabricReport {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let result = FabricCluster::launch(&cfg).run_to_completion(DEADLINE);
        let _ = tx.send(result);
    });
    match rx.recv_timeout(DEADLINE + Duration::from_secs(30)) {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => panic!("fabric run failed: {e}"),
        Err(_) => panic!("fabric run wedged past the watchdog deadline"),
    }
}

/// The acceptance-criteria run: a 4-replica wall-clock cluster completes
/// ≥ 1000 YCSB requests with byte-identical `history_digest` (and state
/// digest) on every replica, and shutdown joins all threads.
fn assert_converged_run(support: SupportMode) -> FabricReport {
    let cfg = FabricConfig::new(4, support);
    assert!(cfg.total_requests() >= 1000, "acceptance floor");
    let report = run_guarded(cfg.clone());

    assert_eq!(report.completed_requests, cfg.total_requests(), "all requests completed");
    assert_eq!(report.latency.count, cfg.total_requests(), "one latency sample per request");
    assert!(report.converged(), "replicas diverged: {:#?}", report.replicas);
    let first = &report.replicas[0];
    assert!(first.ledger_len > 0, "committed history must be non-empty");
    for r in &report.replicas {
        assert_eq!(r.history_digest, first.history_digest, "history digest at {}", r.id);
        assert_eq!(r.state_digest, first.state_digest, "state digest at {}", r.id);
        assert_eq!(r.exec_frontier, first.exec_frontier, "frontier at {}", r.id);
        assert_eq!(r.ledger_len, first.ledger_len, "ledger length at {}", r.id);
        assert_eq!(r.ingress.decode_errors, 0, "malformed frames at {}", r.id);
    }
    // Every stage thread (4 per replica) and client thread joined.
    assert_eq!(report.threads_joined, 4 * 4 + cfg.n_clients, "all threads joined");
    report
}

#[test]
fn ts_run_converges_with_identical_history_digests() {
    let report = assert_converged_run(SupportMode::Threshold);
    // The checkpoint-GC recycle loop actually ran: batches were retired
    // by the consensus stage and reused by backup ingress decodes.
    assert!(
        report.replicas.iter().any(|r| r.consensus.retired > 0),
        "checkpoint GC never retired a batch: {:#?}",
        report.replicas
    );
    assert!(
        report.replicas.iter().any(|r| r.ingress.pool_hits > 0),
        "pooled decode never reused a container: {:#?}",
        report.replicas
    );
    // Batches were cut by the batching stage, not the automaton's
    // internal batcher (the pipeline is real).
    assert!(report.replicas.iter().any(|r| r.batching.batches_cut > 0));
    // Replies were delivered by the egress stage.
    let replies: u64 = report.replicas.iter().map(|r| r.egress.replies_sent).sum();
    assert!(replies >= report.completed_requests, "INFORM fan-out went through egress");
}

#[test]
fn mac_run_converges_with_identical_history_digests() {
    let report = assert_converged_run(SupportMode::Mac);
    // MAC mode has no CERTIFY; commits come from nf matching SUPPORT
    // votes, so every replica must still have decided every batch.
    let first = &report.replicas[0];
    for r in &report.replicas {
        assert_eq!(r.consensus.decided, first.consensus.decided, "decisions at {}", r.id);
    }
}

#[test]
fn signed_client_run_converges_and_rejects_nothing() {
    // Exercise the authenticated admission path: Ed25519-signed client
    // requests verified by the batching stage (and re-verified by the
    // backups' batched PROPOSE check). A key-index or signing-bytes
    // regression would show up as rejected_sigs > 0 and a stalled run.
    let mut cfg = FabricConfig::new(4, SupportMode::Threshold);
    cfg.cluster = cfg.cluster.with_crypto_mode(poe_crypto::CryptoMode::Ed25519);
    cfg.n_clients = 2;
    cfg.requests_per_client = 100;
    let report = run_guarded(cfg.clone());
    assert_eq!(report.completed_requests, cfg.total_requests());
    assert!(report.converged(), "replicas diverged: {:#?}", report.replicas);
    for r in &report.replicas {
        assert_eq!(r.batching.rejected_sigs, 0, "valid signatures rejected at {}", r.id);
    }
    // The primary actually verified admissions (requests flowed through
    // its batching stage, not around it).
    assert!(report.replicas.iter().any(|r| r.batching.batches_cut > 0));
}

#[test]
fn shutdown_with_no_clients_joins_all_stage_threads() {
    let mut cfg = FabricConfig::new(4, SupportMode::Threshold);
    cfg.n_clients = 0;
    let cluster = FabricCluster::launch(&cfg);
    std::thread::sleep(Duration::from_millis(50));
    let report = cluster.shutdown();
    assert_eq!(report.threads_joined, 16, "4 stages × 4 replicas");
    assert_eq!(report.completed_requests, 0);
    assert!(report.converged(), "idle replicas share the genesis history");
}

#[test]
fn midrun_shutdown_joins_cleanly() {
    // Stop while traffic is in flight: threads must still drain and
    // join; whatever committed must verify (shutdown audits the chain).
    let cfg = FabricConfig::new(4, SupportMode::Threshold);
    let cluster = FabricCluster::launch(&cfg);
    std::thread::sleep(Duration::from_millis(30));
    let report = cluster.shutdown();
    assert_eq!(report.threads_joined, 16 + cfg.n_clients);
}
