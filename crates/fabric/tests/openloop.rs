//! Open-loop engine end-to-end: below saturation the offered rate is
//! achieved with zero shedding; far above it, the pipeline sheds
//! visibly, stays memory-bounded, and the replicas still converge to
//! byte-identical committed histories.

use poe_consensus::SupportMode;
use poe_fabric::{run_open_loop, FabricConfig, OpenLoopConfig};
use poe_workload::ArrivalProcess;
use std::time::Duration;

fn config(target_rps: f64) -> OpenLoopConfig {
    let mut cfg = OpenLoopConfig::new(FabricConfig::new(4, SupportMode::Threshold), target_rps);
    cfg.sessions = 4_096;
    cfg.drivers = 2;
    cfg.process = ArrivalProcess::Poisson;
    cfg.warmup = Duration::from_millis(400);
    cfg.measure = Duration::from_millis(1200);
    cfg.abandon_after = Duration::from_millis(900);
    cfg.seed = 7;
    cfg
}

#[test]
fn below_saturation_offered_rate_is_achieved_without_shedding() {
    let cfg = config(600.0);
    let report = run_open_loop(&cfg, Duration::from_secs(30)).expect("run completes");
    assert!(report.converged(), "history digests must match");
    assert_eq!(report.total_shed(), 0, "no backpressure below saturation");
    assert_eq!(report.mux.abandoned, 0, "no abandoned requests below saturation");
    // The achieved rate tracks the offered rate (generous bounds: CI
    // boxes are slow and the measured window is short).
    assert!(
        report.achieved_rps >= cfg.target_rps * 0.7,
        "achieved {:.0} rps of {:.0} offered",
        report.achieved_rps,
        cfg.target_rps
    );
    assert!(report.completion_ratio() > 0.9, "ratio {}", report.completion_ratio());
    assert!(report.latency.count > 0 && report.latency.p50_us > 0);
    // Per-thread CPU accounting feeds req/s/core on Linux; elsewhere the
    // report degrades to None rather than lying.
    if let Some(rpspc) = report.requests_per_sec_per_core() {
        assert!(rpspc > 0.0);
    }
}

#[test]
fn overload_sheds_visibly_stays_bounded_and_converges() {
    let mut cfg = config(200_000.0); // Far past any 1-core saturation.
    cfg.sessions = 16_384;
    cfg.warmup = Duration::from_millis(200);
    cfg.measure = Duration::from_millis(800);
    // A small bound makes the shed path the common case.
    cfg.fabric.tuning.batch_queue_cap = 512;
    cfg.fabric.tuning.reply_cache_bytes = 64 * 1024;
    let report = run_open_loop(&cfg, Duration::from_secs(60)).expect("overload run completes");
    assert!(report.converged(), "overload must not break agreement");
    assert!(
        report.total_shed() > 0,
        "2x+ overload must shed visibly (shed={}, submitted={})",
        report.total_shed(),
        report.mux.submitted
    );
    for r in &report.fabric.replicas {
        // The bounded queue enforces the memory bound at ingress…
        assert!(
            r.batching.queue_peak <= cfg.fabric.tuning.batch_queue_cap,
            "replica {} queue peaked at {} > cap",
            r.id,
            r.batching.queue_peak
        );
        // …and the reply cache stays within a frame of its byte budget.
        assert!(
            r.session.cached_bytes_peak <= cfg.fabric.tuning.reply_cache_bytes + 4096,
            "replica {} reply cache peaked at {}",
            r.id,
            r.session.cached_bytes_peak
        );
    }
    // The engine kept offering load open-loop: completions happened even
    // though far fewer than offered.
    assert!(report.mux.completed > 0, "some requests must still complete under overload");
}
