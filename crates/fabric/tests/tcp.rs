//! Socket-substrate cluster tests: the same fabric pipeline as
//! `tests/cluster.rs`, but wired over a loopback TCP mesh
//! ([`TcpTransport`]) — real sockets, length-prefixed framing,
//! supervised reconnecting links — in one process, where convergence
//! and exactly-once invariants can be asserted tightly.
//!
//! Covers the three socket-specific claims:
//! - both SUPPORT modes converge to byte-identical history digests
//!   over TCP, exactly as in-process;
//! - per-peer link MACs (the paper's MAC-cluster model) verify cleanly
//!   end to end — zero `auth_failures` — while still converging;
//! - killing one replica's sockets mid-run forces supervised
//!   reconnects and neither loses the run nor delivers anything twice.

use poe_consensus::SupportMode;
use poe_crypto::CryptoMode;
use poe_fabric::{FabricCluster, FabricConfig, FabricReport, TcpTransport};
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(120);

/// Launch over a fresh loopback TCP mesh and run to completion under a
/// watchdog. Returns the report and the transport (for link drills).
fn run_tcp_guarded(cfg: FabricConfig, kill_replica_at: Option<(usize, Duration)>) -> FabricReport {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut transport =
            TcpTransport::loopback(&cfg.cluster, cfg.link_auth).expect("bind loopback mesh");
        let cluster = FabricCluster::launch_with(&cfg, &mut transport);
        if let Some((victim, after)) = kill_replica_at {
            std::thread::sleep(after);
            transport.replica_hubs()[victim].drop_links();
        }
        let _ = tx.send(cluster.run_to_completion(DEADLINE));
    });
    match rx.recv_timeout(DEADLINE + Duration::from_secs(30)) {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => panic!("tcp fabric run failed: {e}"),
        Err(_) => panic!("tcp fabric run wedged past the watchdog deadline"),
    }
}

fn assert_converged(report: &FabricReport, cfg: &FabricConfig) {
    assert_eq!(report.completed_requests, cfg.total_requests(), "all requests completed");
    assert_eq!(report.latency.count, cfg.total_requests(), "one completion per request");
    assert!(report.converged(), "replicas diverged: {:#?}", report.replicas);
    let first = &report.replicas[0];
    assert!(first.ledger_len > 0, "committed history must be non-empty");
    for r in &report.replicas {
        assert_eq!(r.history_digest, first.history_digest, "history digest at {}", r.id);
        assert_eq!(r.state_digest, first.state_digest, "state digest at {}", r.id);
        assert!(!r.links.is_empty(), "socket substrate must report links at {}", r.id);
    }
}

fn tcp_run(support: SupportMode) -> FabricReport {
    let mut cfg = FabricConfig::new(4, support);
    cfg.requests_per_client = 150;
    let report = run_tcp_guarded(cfg.clone(), None);
    assert_converged(&report, &cfg);
    // With no link loss, exactly-once is visible batch by batch: every
    // replica executed the identical count (a frame delivered and
    // admitted twice would skew it).
    let first = &report.replicas[0];
    for r in &report.replicas {
        assert_eq!(r.consensus.executed, first.consensus.executed, "executions at {}", r.id);
    }
    report
}

#[test]
fn tcp_cluster_converges_ts() {
    let report = tcp_run(SupportMode::Threshold);
    // Consensus traffic actually crossed sockets: every replica pushed
    // frames out over its replica links.
    for r in &report.replicas {
        let out: u64 =
            r.links.iter().filter(|l| l.peer.starts_with('r')).map(|l| l.frames_out).sum();
        assert!(out > 0, "replica {} sent nothing over its links: {:#?}", r.id, r.links);
    }
}

#[test]
fn tcp_cluster_converges_mac() {
    tcp_run(SupportMode::Mac);
}

#[test]
fn link_macs_verify_end_to_end_with_zero_failures() {
    let mut cfg = FabricConfig::new(4, SupportMode::Threshold).with_link_auth(CryptoMode::Cmac);
    cfg.requests_per_client = 150;
    let report = run_tcp_guarded(cfg.clone(), None);
    assert_converged(&report, &cfg);
    for r in &report.replicas {
        // Honest traffic under per-peer MACs: every frame verifies.
        assert_eq!(r.ingress.auth_failures, 0, "spurious auth failures at {}", r.id);
        assert_eq!(r.ingress.decode_errors, 0, "malformed frames at {}", r.id);
    }
}

#[test]
fn socket_kill_mid_run_reconnects_and_stays_exactly_once() {
    let mut cfg = FabricConfig::new(4, SupportMode::Threshold);
    // A longer run so the kill lands well inside live traffic.
    cfg.requests_per_client = 250;
    let victim = 1;
    let report = run_tcp_guarded(cfg.clone(), Some((victim, Duration::from_millis(150))));
    // The workload still completes exactly once per request, and every
    // replica ends on the identical committed history.
    assert_converged(&report, &cfg);
    // Supervision observed the kill: the victim's own links (and/or its
    // peers' links to it) reconnected with backoff.
    let reconnects: u64 =
        report.replicas.iter().flat_map(|r| r.links.iter()).map(|l| l.reconnects).sum();
    assert!(
        reconnects >= 1,
        "drop_links must force at least one reconnect: {:#?}",
        report.replicas
    );
}
