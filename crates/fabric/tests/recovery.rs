//! Wall-clock crash–restart recovery: a backup replica is halted
//! mid-run (its stage threads joined, queues dropped — a real crash,
//! not a pause), restarted from its durable state (ledger + stable
//! application state), and must rejoin through the state-transfer
//! repair protocol while the cluster keeps serving clients. The final
//! report proves convergence, audits the ledger chain, and shows the
//! responder-side repair budget actually rate-limited catch-up traffic.

use poe_consensus::SupportMode;
use poe_fabric::{FabricCluster, FabricConfig, FabricReport};
use std::time::Duration;

/// Generous bound for CI machines; healthy runs finish in seconds.
const DEADLINE: Duration = Duration::from_secs(120);

/// Index of the crash victim: a backup, never the view-0 primary (a
/// restarted replica loses its volatile reply cache; restarting the
/// primary is the view-change suite's territory).
const VICTIM: usize = 2;

/// Launches the cluster, crashes the victim once traffic is flowing,
/// holds it down long enough to fall several checkpoint intervals
/// behind, restarts it, and drives the run to completion — all under a
/// watchdog so a wedged pipeline fails instead of hanging the suite.
fn run_crash_restart(cfg: FabricConfig) -> FabricReport {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut cluster = FabricCluster::launch(&cfg);
        std::thread::sleep(Duration::from_millis(100));
        cluster.crash_replica(VICTIM);
        std::thread::sleep(Duration::from_millis(400));
        cluster.restart_replica(VICTIM);
        let _ = tx.send(cluster.run_to_completion(DEADLINE));
    });
    match rx.recv_timeout(DEADLINE + Duration::from_secs(30)) {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => panic!("fabric recovery run failed: {e}"),
        Err(_) => panic!("fabric recovery run wedged past the watchdog deadline"),
    }
}

/// A workload long enough that client traffic — and with it the
/// checkpoint cadence that refills repair budgets — keeps flowing
/// while the restarted replica catches up. The repair budget is set
/// low so a single checkpoint image cannot be served inside one
/// budget window: the throttle must engage and the retry path must
/// finish the job across refills.
fn recovery_cfg(support: SupportMode) -> FabricConfig {
    let mut cfg = FabricConfig::new(4, support);
    cfg.requests_per_client = 1000;
    cfg.cluster = cfg
        .cluster
        .with_repair_budget_chunks(8)
        .with_repair_chunk_bytes(512)
        .with_repair_timeout(poe_kernel::time::Duration::from_millis(100));
    cfg
}

fn assert_recovered(report: &FabricReport, cfg: &FabricConfig) {
    assert_eq!(report.completed_requests, cfg.total_requests(), "all requests completed");
    assert!(report.converged(), "replicas diverged: {:#?}", report.replicas);
    let first = &report.replicas[0];
    for r in &report.replicas {
        assert_eq!(r.history_digest, first.history_digest, "history digest at {}", r.id);
        assert_eq!(r.state_digest, first.state_digest, "state digest at {}", r.id);
        assert_eq!(r.exec_frontier, first.exec_frontier, "frontier at {}", r.id);
    }

    // The victim rejoined through the repair protocol, not by luck.
    let victim = &report.replicas[VICTIM];
    assert!(
        victim.repair.repairs_completed >= 1,
        "victim must complete a state-transfer repair: {:#?}",
        victim.repair
    );
    assert!(victim.repair.chunks_fetched >= 1, "repair must actually move chunks");
    assert!(victim.consensus.caught_up >= 1, "consensus stage observed the CaughtUp");

    // Peers served the image — and the token budget rate-limited them:
    // the image spans more chunks than one budget window, so at least
    // one request had to be dropped and retried after a refill.
    let served: u64 = report.replicas.iter().map(|r| r.repair.chunks_served).sum();
    let throttled: u64 = report.replicas.iter().map(|r| r.repair.throttled).sum();
    assert!(served >= 1, "no peer served repair chunks: {:#?}", report.replicas);
    assert!(
        throttled >= 1,
        "the repair budget never throttled (served {served} chunks): {:#?}",
        report.replicas
    );
    assert!(victim.repair.retries >= 1, "throttled chunks must be re-requested");
}

#[test]
fn crashed_backup_restarts_and_catches_up_ts() {
    let cfg = recovery_cfg(SupportMode::Threshold);
    let report = run_crash_restart(cfg.clone());
    assert_recovered(&report, &cfg);
}

#[test]
fn crashed_backup_restarts_and_catches_up_mac() {
    let cfg = recovery_cfg(SupportMode::Mac);
    let report = run_crash_restart(cfg.clone());
    assert_recovered(&report, &cfg);
}
