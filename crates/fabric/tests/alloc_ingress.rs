//! Proves the fabric ingress allocation claim with a counting global
//! allocator: once the batch pool is warm (refilled by checkpoint-GC
//! recycling in the running fabric), decoding a batch-carrying envelope
//! frame — request payloads and signatures included — allocates
//! **nothing**: payloads are views into the receive frame and the batch
//! container comes from the pool.
//!
//! The decoder is exercised directly (no threads): the counting
//! allocator is process-global, so the steady-state loop must be the
//! only code running.

use poe_crypto::provider::AuthTag;
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
use poe_fabric::IngressDecoder;
use poe_kernel::codec::encode_envelope;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{Envelope, ProtocolMsg};
use poe_kernel::request::{Batch, ClientRequest};
use poe_kernel::wire::WireBytes;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Minimum allocation count of `f` across a few runs (the minimum
/// filters out one-off interference from the test harness).
fn min_allocs(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty")
}

/// A realistic PROPOSE envelope: 20 signed requests with 64-byte
/// payloads, as a hub frame.
fn propose_frame() -> WireBytes {
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1);
    let requests: Vec<ClientRequest> = (0..20)
        .map(|i| {
            let op = vec![i as u8; 64];
            let sig = km.client(0).sign(&ClientRequest::signing_bytes(ClientId(0), i, &op));
            ClientRequest::new(ClientId(0), i, op, Some(sig))
        })
        .collect();
    let env = Envelope {
        from: NodeId::Replica(ReplicaId(0)),
        auth: AuthTag::None,
        msg: ProtocolMsg::PoePropose { view: View(3), seq: SeqNum(9), batch: Batch::new(requests) },
    };
    WireBytes::from(encode_envelope(&env))
}

/// The satellite claim: steady-state fabric decode does not allocate —
/// batch containers included. One warm-up decode fills the pool (as
/// checkpoint-GC recycling does in the running fabric); from then on
/// every decode+recycle cycle is zero-alloc.
#[test]
fn steady_state_fabric_decode_is_allocation_free() {
    let frame = propose_frame();
    let mut decoder = IngressDecoder::new();

    // Warm-up: the cold decode may allocate the container once.
    match decoder.decode(&frame).expect("well-formed frame").msg {
        ProtocolMsg::PoePropose { batch, .. } => decoder.recycle(batch),
        other => panic!("wrong variant {}", other.label()),
    }

    let allocs = min_allocs(|| {
        let env = decoder.decode(&frame).expect("well-formed frame");
        std::hint::black_box(&env);
        match env.msg {
            ProtocolMsg::PoePropose { batch, .. } => {
                debug_assert!(batch.requests[0].op.shares_buffer_with(&frame), "zero-copy");
                decoder.recycle(batch);
            }
            other => panic!("wrong variant {}", other.label()),
        }
    });
    assert_eq!(allocs, 0, "steady-state fabric ingress decode allocated");

    let stats = decoder.stats();
    assert_eq!(stats.pool_misses, 1, "only the warm-up decode may allocate the container");
    assert!(stats.pool_hits >= 5, "steady state must reuse the container");
    assert_eq!(stats.decode_errors, 0);
}
